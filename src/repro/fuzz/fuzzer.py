"""The coverage-guided fuzzing loop, generic over the coverage metric.

The loop is the paper's Hardware Fuzzer box: evaluate seeds, then pick a
corpus entry, mutate, evaluate, and retain inputs that discover new
coverage items.  The *evaluation function is a parameter* — it runs the
processor and returns coverage items plus any findings — so the very
same loop runs with Leakage Path coverage (Specure), traditional code
coverage (the Figure 2 baseline), or any baseline tool's feedback.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro import telemetry
from repro.fuzz.corpus import Corpus
from repro.fuzz.crash import CRASH_KIND, crash_report
from repro.fuzz.input import TestProgram
from repro.fuzz.mutations import MutationEngine
from repro.utils.rng import DeterministicRng

#: evaluate(program) -> (coverage items, findings, metadata)
EvaluateFn = Callable[[TestProgram], tuple[Iterable, list, dict]]


@dataclass
class FuzzFinding:
    """One detector finding, stamped with the iteration that produced it."""

    iteration: int
    kind: str
    detail: object
    program: TestProgram


@dataclass
class FuzzObserver:
    """Optional per-iteration callback hook (progress printing, logging)."""

    on_iteration: Callable[[int, int, int], None] = lambda i, new, total: None


@dataclass
class CampaignResult:
    """What one fuzzing campaign produced."""

    iterations: int
    coverage_curve: list[int] = field(default_factory=list)  # total per iter
    findings: list[FuzzFinding] = field(default_factory=list)
    corpus_size: int = 0
    executed_programs: int = 0
    #: Each coverage item with the iteration that first discovered it,
    #: in discovery order.  ``coverage_curve`` is derivable from this
    #: log; sharded runs merge logs to compute exact union curves.
    discovery_log: list[tuple[int, object]] = field(default_factory=list)

    def final_coverage(self) -> int:
        return self.coverage_curve[-1] if self.coverage_curve else 0

    def iterations_to_coverage(self, target: int) -> int | None:
        """First iteration reaching ``target`` total coverage, or None."""
        for index, total in enumerate(self.coverage_curve):
            if total >= target:
                return index + 1
        return None

    def first_finding(self, kind: str | None = None) -> FuzzFinding | None:
        for finding in self.findings:
            if kind is None or finding.kind == kind:
                return finding
        return None


class Fuzzer:
    """Coverage-guided mutation fuzzing."""

    def __init__(
        self,
        evaluate: EvaluateFn,
        seeds: list[TestProgram],
        rng: DeterministicRng,
        mutator: MutationEngine | None = None,
        splice_probability: float = 0.15,
        mutation_rounds: int = 3,
    ):
        if not seeds:
            raise ValueError("the fuzzer needs at least one seed")
        self.evaluate = evaluate
        self.seeds = [seed.copy() for seed in seeds]
        self.rng = rng
        self.mutator = mutator or MutationEngine(rng.fork(0xA11))
        self.splice_probability = splice_probability
        self.mutation_rounds = mutation_rounds
        self.coverage: set = set()
        self.corpus = Corpus()
        #: How the most recent input was produced ("seed", "splice",
        #: and/or mutation-operator names) — telemetry attribution only.
        self._provenance: tuple[str, ...] = ()

    def run(
        self,
        iterations: int,
        stop_when: Callable[[list[FuzzFinding]], bool] | None = None,
        observer: FuzzObserver | None = None,
        *,
        checkpoint_every: int = 0,
        on_checkpoint: Callable[[int, CampaignResult], None] | None = None,
        start_iteration: int = 0,
        resume_result: CampaignResult | None = None,
    ) -> CampaignResult:
        """Run up to ``iterations`` rounds; optionally stop early.

        ``stop_when`` receives the cumulative findings after each round
        and may end the campaign (e.g. "stop at first Zenbleed leak").

        ``on_checkpoint(next_iteration, result)`` fires after every
        ``checkpoint_every``-th iteration (never after the final one);
        resuming a checkpointed campaign passes the restored partial
        result as ``resume_result`` and the recorded ``next_iteration``
        as ``start_iteration`` — with the fuzzer's RNG/corpus/coverage
        restored alongside, the remaining iterations replay exactly the
        draws an uninterrupted run would have made.

        The cyclic garbage collector is paused for the duration of the
        loop: one iteration allocates tens of thousands of objects, and
        with the collector's default thresholds that forces dozens of
        generation-0 sweeps per iteration.  The pipeline's per-run
        artifacts are reference-cycle-free by design (the columnar trace
        and its window views hold no back-references), so everything a
        finished iteration drops is freed immediately by reference
        counting; the deferred full collection on exit only mops up
        incidental cycles (e.g. exception tracebacks).
        """
        import gc

        result = (resume_result if resume_result is not None
                  else CampaignResult(iterations=0))
        recorder = telemetry.recorder()
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            for index in range(start_iteration, iterations):
                with recorder.span("online/iteration"):
                    program = self._next_input(index)
                    new_items = self._run_one(index, program, result)
                result.coverage_curve.append(len(self.coverage))
                result.iterations = index + 1
                if recorder.enabled:
                    recorder.count("fuzz.iterations")
                    if new_items:
                        recorder.count("fuzz.new_coverage_items", new_items)
                    for op in self._provenance:
                        recorder.count(f"mutation.{op}.programs")
                        if new_items:
                            recorder.count(f"mutation.{op}.yield", new_items)
                if observer is not None:
                    observer.on_iteration(index, new_items, len(self.coverage))
                if stop_when is not None and stop_when(result.findings):
                    break
                if (checkpoint_every > 0 and on_checkpoint is not None
                        and (index + 1) % checkpoint_every == 0
                        and index + 1 < iterations):
                    on_checkpoint(index + 1, result)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        result.corpus_size = len(self.corpus)
        result.executed_programs = result.iterations
        return result

    # -- internals -----------------------------------------------------------

    def _next_input(self, index: int) -> TestProgram:
        if index < len(self.seeds):
            # Hand out a copy: the caller's program flows into findings
            # and (potentially) external hands; aliasing the live seed
            # list would let later mutation corrupt the seed schedule.
            self._provenance = ("seed",)
            return self.seeds[index].copy()
        if len(self.corpus) == 0:
            # Nothing retained yet: keep mutating seeds.
            base = self.seeds[index % len(self.seeds)]
            mutant = self.mutator.mutate(base, rounds=self.mutation_rounds)
            self._provenance = self.mutator.last_operations
            return mutant
        entry = self.corpus.pick(self.rng)
        if len(self.corpus) >= 2 and self.rng.coin(self.splice_probability):
            other = self.corpus.pick(self.rng)
            child = self.mutator.splice(entry.program, other.program)
            mutant = self.mutator.mutate(child, rounds=1)
            self._provenance = ("splice",) + self.mutator.last_operations
            return mutant
        rounds = self.rng.randint(1, self.mutation_rounds)
        mutant = self.mutator.mutate(entry.program, rounds=rounds)
        self._provenance = self.mutator.last_operations
        return mutant

    def _run_one(self, index: int, program: TestProgram,
                 result: CampaignResult) -> int:
        try:
            items, findings, _meta = self.evaluate(program)
        except Exception as error:
            # Crash-as-finding containment: a poison program that makes
            # the step loop raise is recorded as a finding (program,
            # exception, raising phase) and the campaign keeps going —
            # one bad input must not unwind a whole shard.  Only
            # ``Exception`` is contained; KeyboardInterrupt and other
            # BaseExceptions still unwind.
            result.findings.append(FuzzFinding(
                iteration=index, kind=CRASH_KIND,
                detail=crash_report(error), program=program.copy(),
            ))
            return 0
        coverage = self.coverage
        # Batch update: collect this iteration's unseen items (first
        # occurrence order preserved), then grow the coverage set in one
        # C-level call; the delta count is the list length.
        fresh = [item for item in items if item not in coverage]
        if fresh:
            deduped = list(dict.fromkeys(fresh))
            coverage.update(deduped)
            result.discovery_log.extend((index, item) for item in deduped)
            new_items = len(deduped)
            self.corpus.add(program, new_items)
        else:
            new_items = 0
        for finding in findings:
            # Findings retain their trigger program beyond the fuzzing
            # loop (reports, stores, minimization) — copy at the
            # retention boundary so no caller can mutate shared state.
            result.findings.append(FuzzFinding(
                iteration=index, kind=finding[0], detail=finding[1],
                program=program.copy(),
            ))
        return new_items
