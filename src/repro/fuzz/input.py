"""Test-input representation: what the fuzzer hands the processor.

A :class:`TestProgram` is one fuzzing input: a sequence of 32-bit
instruction words plus the deterministic initial machine context
(register values and the memory background-fill seed).  It is the unit
of mutation, corpus storage, and simulation, and it can configure both
the out-of-order core and the golden-model ISS identically — which is
what makes co-simulation and the TheHuzz baseline possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.rng import DeterministicRng


@dataclass
class TestProgram:
    """One fuzzer-generated test input.

    ``memory_overlay`` maps addresses to byte values written into memory
    before the run — differential tools (the SpecDoctor baseline) use it
    to plant different *secret* values while everything else stays
    identical.
    """

    #: Not a pytest class, despite the Test* name.
    __test__ = False

    words: list[int]
    reg_init: list[int] = field(default_factory=lambda: [0] * 32)
    data_seed: int = 0
    max_cycles: int = 2_000
    label: str = ""
    memory_overlay: dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.reg_init) != 32:
            raise ValueError("reg_init must have 32 entries")
        self.reg_init = [0] + [v & 0xFFFFFFFFFFFFFFFF for v in self.reg_init[1:]]
        self.words = [w & 0xFFFFFFFF for w in self.words]

    @classmethod
    def random(
        cls,
        rng: DeterministicRng,
        length: int = 24,
        data_region: int = 0x8100_0000,
    ) -> "TestProgram":
        """A fully random program (random words, random register state).

        Registers are biased toward the data region so random loads and
        stores mostly land in a coherent address range, as hardware
        fuzzers do with address masking.
        """
        words = [rng.randbits(32) for _ in range(length)]
        regs = [0] * 32
        for i in range(1, 32):
            if rng.coin(0.5):
                regs[i] = data_region + (rng.randbits(10) << 3)
            else:
                regs[i] = rng.randbits(64)
        return cls(words=words, reg_init=regs, data_seed=rng.randbits(32),
                   label="random")

    def copy(self) -> "TestProgram":
        return TestProgram(
            words=list(self.words),
            reg_init=list(self.reg_init),
            data_seed=self.data_seed,
            max_cycles=self.max_cycles,
            label=self.label,
            memory_overlay=dict(self.memory_overlay),
        )

    def with_secret(self, base: int, secret: bytes) -> "TestProgram":
        """A copy with ``secret`` planted at ``base`` (differential runs)."""
        clone = self.copy()
        for offset, value in enumerate(secret):
            clone.memory_overlay[base + offset] = value
        return clone

    def to_bytes(self) -> bytes:
        """Little-endian byte image of the instruction words."""
        out = bytearray()
        for word in self.words:
            out += word.to_bytes(4, "little")
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes, template: "TestProgram") -> "TestProgram":
        """Rebuild a program from a mutated byte image, keeping context."""
        padded = blob + b"\x00" * (-len(blob) % 4)
        words = [
            int.from_bytes(padded[i:i + 4], "little")
            for i in range(0, len(padded), 4)
        ]
        clone = template.copy()
        clone.words = words or [0]
        return clone

    def fingerprint(self) -> int:
        """Cheap content hash for corpus deduplication."""
        return hash((
            tuple(self.words),
            tuple(self.reg_init),
            self.data_seed,
            tuple(sorted(self.memory_overlay.items())),
        ))
