"""Declarative scenario specifications: one validated bundle per campaign.

A :class:`ScenarioSpec` captures everything that distinguishes one of the
paper's experiments (or a new workload) from another — the core design
preset, the armed vulnerability emulations, the coverage feedback, the
seed policy, the mutation knobs, the campaign shape, and the stop
condition — as a frozen, validated dataclass.  Specs load from TOML or
JSON files and round-trip losslessly (``spec == from_toml(to_toml(spec))``),
so a campaign is reproducible from a single small text file, the same
shape Revizor-style fuzzers ship their detection scenarios in.

The spec is deliberately *data only*: :meth:`ScenarioSpec.build_config`
and :meth:`ScenarioSpec.build_specure` are the bridges into the live
pipeline, and :mod:`repro.scenarios.runner` executes specs against the
persistent campaign store.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path

from repro.boom.config import SPECULATION_MECHANISMS, BoomConfig
from repro.boom.vulns import VulnConfig
from repro.contracts.clauses import (
    EXECUTION_CLAUSES,
    ContractError,
    all_clauses,
    compose_clause,
    contract_kind,
    parse_clause,
)
from repro.core.online import DETECTORS
from repro.fuzz.categories import CategoryError, validate_categories
from repro.puts.spec_cpu import SPEC_CPU_CLAUSES

#: PUT design presets: the BOOM model sizes
#: (``BoomConfig.small/medium/large``) plus the Verilog-backed
#: speculative core (``spec-cpu``, run through the RTL simulator).
DESIGNS = ("small", "medium", "large", "spec-cpu")
#: Coverage feedback metrics (the two Figure 2 arms).
COVERAGES = ("lp", "code")
#: Armable vulnerability emulation hooks (paper §4.2).
VULN_HOOKS = ("mwait", "zenbleed")
#: Finding kinds the IFT pathway produces.
IFT_STOP_KINDS = ("mwait", "zenbleed", "spectre_v1", "spectre_v2", "direct")
#: Every finding kind a stop condition may wait for: the IFT kinds, one
#: contract-violation kind per composable clause, and the contained
#: step-loop ``crash`` kind (any detector can produce one).  Which
#: contract kind a given scenario can actually fire is checked per spec
#: against :meth:`ScenarioSpec.effective_contract`, not this flat set.
STOP_KINDS = IFT_STOP_KINDS + tuple(
    contract_kind(clause) for clause in all_clauses()
) + ("crash",)

#: ``on_shard_failure`` policies: ``fail`` aborts the campaign at the
#: first exhausted shard, ``degrade`` quarantines it and completes.
SHARD_FAILURE_POLICIES = ("fail", "degrade")

_SHARD_STRIDE_REMOVED = (
    "the 'shard_stride' scenario knob has been removed: per-shard seeds "
    "are hash-derived (repro.harness.parallel.shard_seed); delete the "
    "key from the scenario definition"
)


class ScenarioError(ValueError):
    """A scenario spec failed validation; the message says how to fix it."""


def _suggest(unknown: str, options: tuple[str, ...] | list[str]) -> str:
    matches = difflib.get_close_matches(unknown, list(options), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


@dataclass(frozen=True)
class ScenarioSpec:
    """One campaign scenario, fully described and validated.

    Field groups mirror the knobs the paper's experiments vary:

    * **design** — ``design`` preset, armed ``vulns`` hooks, and whether
      the data cache joins the monitored observables
      (``monitor_dcache``, the Spectre experiments);
    * **coverage** — ``coverage`` feedback metric (``lp``/``code``);
    * **seed policy** — base ``seed``, ``use_special_seeds``, and the
      ``random_seed_count`` of extra random seed programs;
    * **mutation** — ``splice_probability`` and ``mutation_rounds`` of
      the mutation engine;
    * **detection** — ``detector`` picks the pathway (``ift``,
      ``contract``, or ``both`` for cross-validation), ``contract``
      the base clause, ``execution_clauses`` extra execution members
      composed into it (see :meth:`effective_contract`), and
      ``inputs_per_class`` / ``max_spec_window`` the relational-testing
      depth (:mod:`repro.contracts`);
    * **speculation** — ``speculation`` arms hardware speculation
      mechanisms (:data:`~repro.boom.config.SPECULATION_MECHANISMS`) on
      the PUT: a *catching* scenario arms a mechanism while keeping a
      sequential-model contract, an *ablation* scenario arms it **and**
      contract-allows it via ``execution_clauses``;
    * **generation scope** — ``instruction_categories`` restricts seed
      generation and mutation to named instruction categories
      (:mod:`repro.fuzz.categories`), steering campaigns at the gadget
      shapes a clause needs;
    * **campaign shape** — ``iterations`` per shard and ``shards``
      (``iterations = 0`` runs the offline phase only); per-shard seeds
      are hash-derived (:func:`repro.harness.parallel.shard_seed`), and
      the removed ``shard_stride`` knob is rejected on load;
    * **resilience** — ``max_shard_retries`` same-seed retries per
      failed shard unit, ``unit_timeout_s`` wall-clock watchdog budget
      per unit (``0`` disables the watchdog), ``checkpoint_every``
      iterations between mid-shard checkpoints (``0`` disables
      checkpointing), and ``on_shard_failure`` choosing between
      aborting (``fail``) and quarantine-plus-degraded-completion
      (``degrade``) once a shard exhausts its retries
      (see ``docs/resilience.md``);
    * **stop condition** — ``stop_kind`` ends every shard at its first
      finding of that vulnerability or contract-violation kind (or at
      the first contained ``crash``).
    """

    name: str
    description: str = ""
    # Design.
    design: str = "small"
    vulns: tuple[str, ...] = ("mwait", "zenbleed")
    monitor_dcache: bool = False
    # Coverage feedback.
    coverage: str = "lp"
    # Drop provably-dead PDLCs (repro.analysis.taint) from LP coverage.
    static_prune: bool = False
    # Seed policy.
    seed: int = 1
    use_special_seeds: bool = True
    random_seed_count: int = 4
    # Mutation knobs.
    splice_probability: float = 0.15
    mutation_rounds: int = 3
    # Detection pathway.
    detector: str = "ift"
    contract: str = "ct-seq"
    execution_clauses: tuple[str, ...] = ()
    inputs_per_class: int = 3
    max_spec_window: int = 16
    # Hardware speculation mechanisms to arm on the PUT.
    speculation: tuple[str, ...] = ()
    # Generation scope (empty: every instruction category).
    instruction_categories: tuple[str, ...] = ()
    # Campaign shape.
    iterations: int = 100
    shards: int = 1
    # Resilience (see docs/resilience.md).
    max_shard_retries: int = 2
    unit_timeout_s: float = 0.0
    checkpoint_every: int = 25
    on_shard_failure: str = "degrade"
    # Stop condition.
    stop_kind: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "vulns", tuple(self.vulns))
        object.__setattr__(self, "execution_clauses",
                           tuple(self.execution_clauses))
        object.__setattr__(self, "speculation", tuple(self.speculation))
        object.__setattr__(self, "instruction_categories",
                           tuple(self.instruction_categories))
        self._validate()

    # -- validation ---------------------------------------------------------

    def _fail(self, message: str):
        name = self.name if isinstance(self.name, str) else repr(self.name)
        raise ScenarioError(f"scenario {name!r}: {message}")

    def _expect_type(self, field_name: str, expected: type | tuple):
        value = getattr(self, field_name)
        # bool is an int subclass; reject it wherever a number is
        # expected so `seed = true` (or `splice_probability = true`) in
        # a TOML file fails loudly instead of becoming 1.
        accepts_bool = expected is bool or (
            isinstance(expected, tuple) and bool in expected
        )
        if isinstance(value, bool) and not accepts_bool:
            self._fail(f"{field_name} must be a number, got a boolean")
        if not isinstance(value, expected):
            kind = getattr(expected, "__name__", str(expected))
            self._fail(
                f"{field_name} must be of type {kind}, "
                f"got {type(value).__name__} ({value!r})"
            )

    def _validate(self):
        if not isinstance(self.name, str) or not self.name:
            self._fail("name must be a non-empty string")
        self._expect_type("description", str)
        self._expect_type("design", str)
        if self.design not in DESIGNS:
            self._fail(
                f"design must be one of {', '.join(DESIGNS)}; "
                f"got {self.design!r}{_suggest(self.design, DESIGNS)}"
            )
        for hook in self.vulns:
            if hook not in VULN_HOOKS:
                self._fail(
                    f"unknown vulnerability hook {hook!r}; armable hooks "
                    f"are {', '.join(VULN_HOOKS)}{_suggest(str(hook), VULN_HOOKS)}"
                )
        if len(set(self.vulns)) != len(self.vulns):
            self._fail(f"vulns lists a hook twice: {list(self.vulns)}")
        self._expect_type("monitor_dcache", bool)
        self._expect_type("static_prune", bool)
        if self.coverage not in COVERAGES:
            self._fail(
                f"coverage must be one of {', '.join(COVERAGES)}; "
                f"got {self.coverage!r}{_suggest(str(self.coverage), COVERAGES)}"
            )
        self._expect_type("seed", int)
        self._expect_type("use_special_seeds", bool)
        self._expect_type("random_seed_count", int)
        if self.random_seed_count < 0:
            self._fail("random_seed_count must be >= 0")
        if not self.use_special_seeds and self.random_seed_count == 0:
            self._fail(
                "the fuzzer needs at least one seed: set "
                "use_special_seeds = true or random_seed_count >= 1"
            )
        self._expect_type("splice_probability", (int, float))
        if not 0.0 <= self.splice_probability <= 1.0:
            self._fail(
                f"splice_probability must be within [0.0, 1.0], "
                f"got {self.splice_probability}"
            )
        self._expect_type("mutation_rounds", int)
        if self.mutation_rounds < 1:
            self._fail("mutation_rounds must be >= 1")
        self._expect_type("detector", str)
        if self.detector not in DETECTORS:
            self._fail(
                f"detector must be one of {', '.join(DETECTORS)}; "
                f"got {self.detector!r}{_suggest(str(self.detector), DETECTORS)}"
            )
        self._expect_type("contract", str)
        try:
            parse_clause(self.contract)
        except ContractError as error:
            self._fail(f"invalid contract clause: {error}")
        for member in self.execution_clauses:
            if member not in EXECUTION_CLAUSES:
                self._fail(
                    f"unknown execution clause {member!r}; composable "
                    f"members are {', '.join(EXECUTION_CLAUSES)}"
                    f"{_suggest(str(member), EXECUTION_CLAUSES)}"
                )
        if len(set(self.execution_clauses)) != len(self.execution_clauses):
            self._fail(
                f"execution_clauses lists a member twice: "
                f"{list(self.execution_clauses)}"
            )
        try:
            effective = compose_clause(self.contract, self.execution_clauses)
        except ContractError as error:
            self._fail(f"invalid clause composition: {error}")
        for mechanism in self.speculation:
            if mechanism not in SPECULATION_MECHANISMS:
                self._fail(
                    f"unknown speculation mechanism {mechanism!r}; armable "
                    f"mechanisms are {', '.join(SPECULATION_MECHANISMS)}"
                    f"{_suggest(str(mechanism), SPECULATION_MECHANISMS)}"
                )
        if len(set(self.speculation)) != len(self.speculation):
            self._fail(
                f"speculation lists a mechanism twice: "
                f"{list(self.speculation)}"
            )
        _, effective_members = parse_clause(effective)
        for member in effective_members:
            if member in SPECULATION_MECHANISMS \
                    and member not in self.speculation:
                self._fail(
                    f"the contract allows {member!r} speculation the "
                    f"hardware never performs; add {member!r} to "
                    f"speculation = [...] (or drop the clause)"
                )
        try:
            validate_categories(self.instruction_categories)
        except CategoryError as error:
            self._fail(str(error))
        self._expect_type("inputs_per_class", int)
        if self.inputs_per_class < 2:
            self._fail("inputs_per_class must be >= 2 (an input class "
                       "needs at least a pair to compare)")
        self._expect_type("max_spec_window", int)
        if self.max_spec_window < 1:
            self._fail("max_spec_window must be >= 1")
        self._expect_type("iterations", int)
        if self.iterations < 0:
            self._fail(
                "iterations must be >= 0 (0 runs the offline phase only)"
            )
        self._expect_type("shards", int)
        if self.shards < 1:
            self._fail("shards must be >= 1")
        self._expect_type("max_shard_retries", int)
        if self.max_shard_retries < 0:
            self._fail("max_shard_retries must be >= 0 (0 means one "
                       "attempt, no retry)")
        self._expect_type("unit_timeout_s", (int, float))
        if self.unit_timeout_s < 0:
            self._fail("unit_timeout_s must be >= 0 (0 disables the "
                       "shard watchdog)")
        self._expect_type("checkpoint_every", int)
        if self.checkpoint_every < 0:
            self._fail("checkpoint_every must be >= 0 (0 disables "
                       "mid-shard checkpoints)")
        self._expect_type("on_shard_failure", str)
        if self.on_shard_failure not in SHARD_FAILURE_POLICIES:
            self._fail(
                f"on_shard_failure must be one of "
                f"{', '.join(SHARD_FAILURE_POLICIES)}; got "
                f"{self.on_shard_failure!r}"
                f"{_suggest(str(self.on_shard_failure), SHARD_FAILURE_POLICIES)}"
            )
        if self.stop_kind is not None and self.stop_kind not in STOP_KINDS:
            self._fail(
                f"stop_kind must be one of {', '.join(STOP_KINDS)} or "
                f"omitted; got {self.stop_kind!r}"
                f"{_suggest(str(self.stop_kind), STOP_KINDS)}"
            )
        if self.design == "spec-cpu":
            if self.vulns:
                self._fail(
                    "the 'spec-cpu' design has no vulnerability emulation "
                    "hooks; set vulns = []"
                )
            if self.speculation:
                self._fail(
                    "the 'spec-cpu' design has no armable speculation "
                    "mechanisms; set speculation = []"
                )
            if self.instruction_categories:
                self._fail(
                    "the 'spec-cpu' fuzz route does not implement "
                    "instruction-category scoping; set "
                    "instruction_categories = []"
                )
            if self.detector in ("contract", "both") \
                    and self.effective_contract() not in SPEC_CPU_CLAUSES:
                self._fail(
                    f"the 'spec-cpu' golden model implements only the "
                    f"{', '.join(SPEC_CPU_CLAUSES)} clauses; "
                    f"got contract = {self.effective_contract()!r}"
                )
        if self.stop_kind is not None and \
                self.stop_kind.startswith("contract_"):
            if self.detector == "ift":
                self._fail(
                    f"stop_kind {self.stop_kind!r} waits for a contract "
                    f"violation, but detector = 'ift' never produces one; "
                    f"set detector = 'contract' or 'both'"
                )
            expected = contract_kind(self.effective_contract())
            if self.stop_kind != expected:
                self._fail(
                    f"stop_kind {self.stop_kind!r} cannot fire: the "
                    f"{self.effective_contract()!r} clause reports "
                    f"violations as {expected!r}"
                )
        elif self.stop_kind is not None and self.stop_kind != "crash" \
                and self.detector == "contract":
            self._fail(
                f"stop_kind {self.stop_kind!r} waits for an IFT finding, "
                f"but detector = 'contract' never produces one; set "
                f"detector = 'ift' or 'both', or stop on "
                f"{contract_kind(self.effective_contract())!r}"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict, source: str = "") -> "ScenarioSpec":
        """Build a validated spec from a plain mapping.

        Unknown keys are rejected with a close-match suggestion, so a
        typo in a scenario file fails with an actionable message rather
        than silently running the default.
        """
        where = f" in {source}" if source else ""
        if not isinstance(data, dict):
            raise ScenarioError(
                f"scenario definition{where} must be a table/object, "
                f"got {type(data).__name__}"
            )
        if "shard_stride" in data:
            raise ScenarioError(
                f"scenario definition{where}: {_SHARD_STRIDE_REMOVED}"
            )
        known = tuple(f.name for f in fields(cls))
        unknown = [key for key in data if key not in known]
        if unknown:
            hints = "".join(
                f"\n  unknown key {key!r}{_suggest(key, known)}"
                for key in sorted(unknown)
            )
            raise ScenarioError(
                f"scenario definition{where} has unknown keys:{hints}"
            )
        if "name" not in data:
            raise ScenarioError(
                f"scenario definition{where} is missing the required "
                f"'name' key"
            )
        payload = dict(data)
        for key, what in (
            ("vulns", "hook names"),
            ("execution_clauses", "execution clause members"),
            ("speculation", "speculation mechanisms"),
            ("instruction_categories", "instruction category names"),
        ):
            if key in payload:
                if not isinstance(payload[key], (list, tuple)):
                    raise ScenarioError(
                        f"scenario {payload.get('name')!r}: {key} must be "
                        f"an array of {what}, got {payload[key]!r}"
                    )
                payload[key] = tuple(payload[key])
        try:
            return cls(**payload)
        except ScenarioError as error:
            if source:
                raise ScenarioError(f"{error} (from {source})") from None
            raise

    @classmethod
    def from_toml(cls, text: str, source: str = "") -> "ScenarioSpec":
        """Parse a TOML scenario (top-level keys or a ``[scenario]`` table)."""
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ScenarioError(
                f"invalid TOML{' in ' + source if source else ''}: {error}"
            ) from None
        if set(data) == {"scenario"} and isinstance(data["scenario"], dict):
            data = data["scenario"]
        return cls.from_dict(data, source=source)

    @classmethod
    def from_json(cls, text: str, source: str = "") -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(
                f"invalid JSON{' in ' + source if source else ''}: {error}"
            ) from None
        if isinstance(data, dict) and set(data) == {"scenario"} \
                and isinstance(data["scenario"], dict):
            data = data["scenario"]
        return cls.from_dict(data, source=source)

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        """Load a scenario file; the format follows the extension."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as error:
            raise ScenarioError(
                f"cannot read scenario file {path}: {error}"
            ) from None
        if path.suffix == ".toml":
            return cls.from_toml(text, source=str(path))
        if path.suffix == ".json":
            return cls.from_json(text, source=str(path))
        raise ScenarioError(
            f"cannot tell the format of {path}: expected a .toml or "
            f".json scenario file"
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        """Field-order dict; a ``None`` stop condition is omitted (TOML
        has no null, and absence already means 'run the full budget')."""
        data = asdict(self)
        data["vulns"] = list(self.vulns)
        # The composable-clause knobs default to empty; omitting them
        # keeps pre-existing scenario files' serialised form stable.
        for key in ("execution_clauses", "speculation",
                    "instruction_categories"):
            if data[key]:
                data[key] = list(data[key])
            else:
                del data[key]
        if data["stop_kind"] is None:
            del data["stop_kind"]
        # static_prune defaults off; omit it so pre-knob scenario files
        # round-trip byte-identically.
        if not data["static_prune"]:
            del data["static_prune"]
        # The resilience knobs likewise serialise only when changed, so
        # scenario files written before the resilience layer keep their
        # exact bytes.
        for key, default in (
            ("max_shard_retries", 2),
            ("unit_timeout_s", 0.0),
            ("checkpoint_every", 25),
            ("on_shard_failure", "degrade"),
        ):
            if data[key] == default:
                del data[key]
        return data

    def to_toml(self) -> str:
        """Render as a ``[scenario]`` TOML table (round-trips exactly)."""
        lines = ["[scenario]"]
        for key, value in self.to_dict().items():
            lines.append(f"{key} = {_toml_value(value)}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        return json.dumps({"scenario": self.to_dict()}, indent=2) + "\n"

    def dump(self, path: str | Path) -> None:
        path = Path(path)
        if path.suffix == ".json":
            path.write_text(self.to_json())
        else:
            path.write_text(self.to_toml())

    # -- bridges into the pipeline ------------------------------------------

    def override(self, **changes) -> "ScenarioSpec":
        """A copy with fields replaced (re-validated)."""
        return replace(self, **changes)

    def vuln_config(self) -> VulnConfig:
        return VulnConfig(
            mwait="mwait" in self.vulns,
            zenbleed="zenbleed" in self.vulns,
        )

    def effective_contract(self) -> str:
        """The canonical clause the detector actually enforces: the base
        ``contract`` with every ``execution_clauses`` member composed in
        (``"ct-cond"`` + ``("ssb",)`` → ``"ct-cond+ssb"``)."""
        return compose_clause(self.contract, self.execution_clauses)

    def build_config(self):
        """The PUT configuration this scenario fuzzes
        (:class:`BoomConfig` or :class:`~repro.puts.rtl.RtlPutConfig`)."""
        if self.design == "spec-cpu":
            from repro.puts.rtl import RtlPutConfig

            return RtlPutConfig()
        preset = getattr(BoomConfig, self.design)
        config = preset(self.vuln_config())
        if self.speculation:
            # Arm the scenario's speculation mechanisms; the fault
            # mechanism needs a non-empty protected region to fault on
            # (one cache line is enough for the transient-access gadget).
            config = replace(
                config,
                speculation=self.speculation,
                protected_size=64 if "fault" in self.speculation
                else config.protected_size,
            )
        return config

    def build_specure(self, seed: int | None = None, core=None, offline=None):
        """A :class:`~repro.core.specure.Specure` wired per this spec.

        ``seed`` overrides the spec's base seed (shard workers pass the
        derived per-shard seed); ``core``/``offline`` inject prebuilt
        shared statics (see
        :func:`repro.harness.parallel.shared_statics`) so pooled workers
        skip re-elaborating the netlist and re-running the offline phase
        per shard.
        """
        from repro.core.specure import Specure

        return Specure(
            self.build_config() if core is None else None,
            core=core,
            offline=offline,
            seed=self.seed if seed is None else seed,
            coverage=self.coverage,
            monitor_dcache=self.monitor_dcache,
            use_special_seeds=self.use_special_seeds,
            random_seed_count=self.random_seed_count,
            splice_probability=self.splice_probability,
            mutation_rounds=self.mutation_rounds,
            detector=self.detector,
            contract=self.effective_contract(),
            inputs_per_class=self.inputs_per_class,
            max_spec_window=self.max_spec_window,
            instruction_categories=self.instruction_categories,
            static_prune=self.static_prune,
        )

    def stop_predicate(self):
        """The stop condition as a findings predicate (or ``None``)."""
        if self.stop_kind is None:
            return None
        from repro.core.specure import stop_on_kind

        return stop_on_kind(self.stop_kind)


def _toml_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise TypeError(f"cannot render {value!r} as TOML")
