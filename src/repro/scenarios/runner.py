"""Scenario execution: specs in, persisted + merged campaign reports out.

``run_scenario`` is the one entry point behind ``python -m repro run``:
it fans the scenario's shards out (inline or across worker processes),
persists each finished shard into the :class:`CampaignStore` as it
lands, and merges the shard reports into the same
:class:`~repro.core.report.CampaignReport` a serial run produces.

Resume contract
---------------
Shards are the unit of persistence and the unit of determinism: shard
``k`` always runs at seed ``shard_seed(spec.seed, k)``
and its artifacts are written atomically when it completes.  A resumed
campaign therefore loads the completed shards' artifacts byte-for-byte,
re-runs only the missing shards (which are pure functions of their
seeds), and merges in shard order — producing a final ``report.txt``
byte-identical to an uninterrupted run of the same scenario.  A shard
lost mid-run restarts from its last mid-shard checkpoint
(:mod:`repro.scenarios.checkpoint`) with the same byte-identity
guarantee.

Resilience contract
-------------------
Failed or hung shard units are retried at the same seed up to
``spec.max_shard_retries`` times (``docs/resilience.md``); a unit that
exhausts its retries is quarantined (``quarantine.jsonl``) and, under
``on_shard_failure = "degrade"``, the campaign still completes — the
final report leads with a degraded-mode banner naming the quarantined
shards, whose iterations are excluded from every merged figure.
``resume`` drops the quarantine list and re-runs exactly those shards.

Replay contract
---------------
``replay_findings`` re-confirms every persisted finding by running its
stored (preferably minimized) program once through a fresh online
pipeline built from the stored scenario — a regression check that needs
no fuzzing at all.  Contained crash findings replay too: the probe
wraps the step loop the same way the fuzzer does, so a poison program
confirms by raising again instead of taking the replay down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro import faultinject, telemetry
from repro.core.offline import OfflineArtifacts
from repro.core.online import OnlinePhase
from repro.core.report import CampaignReport
from repro.fuzz.crash import CRASH_KIND, crash_report
from repro.fuzz.fuzzer import FuzzFinding, FuzzObserver
from repro.fuzz.input import TestProgram
from repro.fuzz.trim import trim_program
from repro.harness.parallel import (
    RetryPolicy,
    ShardExecutionError,
    UnitFailure,
    imap_shards,
    merge_reports,
    shard_seed,
    shared_statics,
)
from repro.scenarios.checkpoint import (
    checkpoint_record,
    load_checkpoint,
    restore_campaign,
    save_checkpoint,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import (
    STATUS_INTERRUPTED,
    CampaignStore,
    program_from_dict,
)
from repro.telemetry import export as telemetry_export
from repro.telemetry.export import TelemetrySummary
from repro.telemetry.heartbeat import HeartbeatWriter, shard_filename
from repro.telemetry.runstats import (
    CAMPAIGN_FILE,
    SUMMARY_FILE,
    load_run_telemetry,
    summarize,
    summarize_recorder,
)
from repro.utils.text import ascii_table


@dataclass
class ScenarioOutcome:
    """What one ``run_scenario``/``resume_scenario`` call produced."""

    spec: ScenarioSpec
    offline: OfflineArtifacts
    report: CampaignReport | None
    store: CampaignStore | None = None
    executed_shards: list[int] = field(default_factory=list)
    resumed_shards: list[int] = field(default_factory=list)
    #: Shards that exhausted their retries (``on_shard_failure =
    #: "degrade"``): the campaign completed without them.
    quarantined: list[UnitFailure] = field(default_factory=list)
    #: Populated only when the campaign ran with ``telemetry=True``.
    telemetry: TelemetrySummary | None = None

    @property
    def degraded(self) -> bool:
        """True when quarantined shards are missing from the report."""
        return bool(self.quarantined)


@dataclass
class ReplayResult:
    """One stored finding re-checked against a fresh pipeline."""

    shard: int
    index: int
    kind: str
    confirmed: bool
    used_minimized: bool
    #: Which pathway produced the finding ("ift" | "contract" |
    #: "crash"); records from stores predating the contract detector
    #: default to "ift".
    detector: str = "ift"


@dataclass(frozen=True)
class ShardTask:
    """One shard's picklable work order for :func:`_execute_shard`.

    ``attempt`` counts executions of this unit (1 = first try); the
    resilient dispatcher re-stamps it via :meth:`with_attempt` so the
    shard's telemetry records which attempt produced its artifacts.
    """

    spec: ScenarioSpec
    shard: int
    seed: int
    telemetry_dir: str | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    attempt: int = 1

    def with_attempt(self, attempt: int) -> "ShardTask":
        return replace(self, attempt=attempt)


def _as_task(task) -> ShardTask:
    """Accept legacy ``(spec, shard, seed[, telemetry_dir])`` tuples."""
    if isinstance(task, ShardTask):
        return task
    return ShardTask(
        spec=task[0], shard=task[1], seed=task[2],
        telemetry_dir=task[3] if len(task) > 3 else None,
    )


def _shard_campaign(spec: ScenarioSpec, seed: int):
    """Build one shard's campaign from the process's shared statics."""
    core, offline = shared_statics(spec.build_config())
    specure = spec.build_specure(seed=seed, core=core, offline=offline)
    return specure.build_campaign()


def _shard_corpus(campaign) -> list[tuple[TestProgram, int]]:
    return [
        (entry.program, entry.new_items)
        for entry in campaign.fuzzer.corpus.entries
    ]


def _shard_observer(heartbeat: HeartbeatWriter | None, shard: int,
                    telemetry_dir: str | None) -> FuzzObserver | None:
    """Compose the shard's per-iteration hooks into one observer.

    Telemetry heartbeats plus (under an armed ``REPRO_CHAOS`` plan) the
    fault-injection hook — the chaos hook runs *after* the heartbeat so
    an injected crash leaves the beat trail the watchdog and the triage
    tooling expect.
    """
    callbacks = []
    if heartbeat is not None:
        callbacks.append(heartbeat.on_iteration)
    chaos_path = None
    if telemetry_dir is not None:
        chaos_path = Path(telemetry_dir) / shard_filename(shard)
    chaos = faultinject.fuzz_observer(shard, chaos_path)
    if chaos is not None:
        callbacks.append(chaos)
    if not callbacks:
        return None
    if len(callbacks) == 1:
        return FuzzObserver(on_iteration=callbacks[0])

    def fan_out(index: int, new_items: int, coverage_size: int) -> None:
        for callback in callbacks:
            callback(index, new_items, coverage_size)

    return FuzzObserver(on_iteration=fan_out)


def _run_shard_campaign(
    task: ShardTask, heartbeat: HeartbeatWriter | None,
) -> tuple[CampaignReport, list[tuple[TestProgram, int]]]:
    """Build, (checkpoint-)resume, and run one shard's campaign."""
    spec = task.spec
    campaign = _shard_campaign(spec, task.seed)
    checkpointing = (task.checkpoint_dir is not None
                     and task.checkpoint_every > 0)
    start_iteration, resume_result = 0, None
    on_checkpoint = None
    if checkpointing:
        record = load_checkpoint(task.checkpoint_dir, task.shard)
        if record is not None and record.get("seed") == task.seed:
            # A retry (or a resumed lost shard) restarts at the last
            # checkpoint; the fidelity contract makes that equivalent
            # to — and byte-identical with — restarting from scratch.
            start_iteration, resume_result = restore_campaign(
                record, campaign)

        def on_checkpoint(next_iteration, result):
            save_checkpoint(
                task.checkpoint_dir, task.shard,
                checkpoint_record(task.shard, task.seed, next_iteration,
                                  campaign, result))

    report = campaign.run(
        spec.iterations,
        stop_when=spec.stop_predicate(),
        observer=_shard_observer(heartbeat, task.shard, task.telemetry_dir),
        checkpoint_every=task.checkpoint_every if checkpointing else 0,
        on_checkpoint=on_checkpoint,
        start_iteration=start_iteration,
        resume_result=resume_result,
    )
    return report, _shard_corpus(campaign)


def _execute_shard(task) -> tuple[CampaignReport, list[tuple[TestProgram, int]]]:
    """One shard's full campaign (picklable pool worker).

    Returns the shard report plus the fuzzer's retained corpus entries,
    which only exist inside the campaign object and must surface here to
    be persisted.  The core and the offline artifacts come from the
    executing process's shared statics — one netlist elaboration and one
    offline phase per process lifetime, not one per shard.

    ``task`` is a :class:`ShardTask` (legacy ``(spec, shard, seed)``
    tuples still work); with a ``telemetry_dir`` the shard streams a
    ``telemetry/shard-<k>.jsonl`` heartbeat log and dumps its
    spans/metrics into it on completion.
    """
    task = _as_task(task)
    faultinject.set_context(task.shard)
    if task.telemetry_dir is not None:
        return _execute_shard_telemetry(task)
    recorder = telemetry.recorder()
    if recorder.enabled:
        # Telemetry without a run directory: record the shard span in
        # the parent recorder, no per-shard file to stream to.
        with recorder.span(f"shard/{task.shard}"):
            return _run_shard_campaign(task, heartbeat=None)
    return _run_shard_campaign(task, heartbeat=None)


def _execute_shard_telemetry(
    task: ShardTask,
) -> tuple[CampaignReport, list[tuple[TestProgram, int]]]:
    """The telemetry-instrumented shard execution path.

    A pooled worker process has no enabled recorder, so it enables a
    private one for the shard's duration; the inline path scopes the
    parent recorder with a window instead.  Either way the shard's
    spans and metrics end up *only* in its own ``shard-<k>.jsonl``
    (heartbeats streamed live, spans/metrics dumped at completion), so
    logs merge by shard id exactly like shard report artifacts.  The
    writer truncates on open, so a retry replaces the failed attempt's
    debris; retries record their attempt number in the meta line.
    """
    recorder = telemetry.recorder()
    owns_recorder = not recorder.enabled
    if owns_recorder:
        recorder = telemetry.enable()
    heartbeat = None
    try:
        with recorder.window() as window:
            with recorder.span(f"shard/{task.shard}"):
                heartbeat = HeartbeatWriter(task.telemetry_dir, task.shard)
                meta = dict(
                    scenario=task.spec.name, seed=task.seed,
                    iterations=task.spec.iterations, pid=os.getpid(),
                )
                if task.attempt > 1:
                    meta["attempt"] = task.attempt
                heartbeat.write_meta(**meta)
                report, corpus = _run_shard_campaign(task, heartbeat)
        heartbeat.finalize(
            spans=window.spans, metrics=window.metrics,
            findings=len(report.fuzz.findings),
        )
        return report, corpus
    except BaseException:
        # Leave the partial heartbeat log on disk: that is exactly the
        # crashed-shard triage artifact `repro stats` reports as a
        # lagging/incomplete shard.
        if heartbeat is not None:
            heartbeat.close()
        raise
    finally:
        if owns_recorder:
            telemetry.disable()


def _contained_run_once(online: OnlinePhase, program: TestProgram):
    """``run_once`` with crash containment: a step-loop exception comes
    back as a ``crash`` report instead of unwinding the caller — the
    same shape the fuzz loop records, so minimization predicates and
    replay confirm poison programs like any other finding."""
    try:
        return online.run_once(program)
    except Exception as error:  # containment boundary, like the fuzzer's
        return None, [crash_report(error)]


class _Minimizer:
    """Trims finding programs against a lazily-built online pipeline."""

    def __init__(self, spec: ScenarioSpec, specure):
        self._spec = spec
        self._specure = specure
        self._online: OnlinePhase | None = None

    def _pipeline(self, offline: OfflineArtifacts) -> OnlinePhase:
        if self._online is None:
            self._online = self._specure.build_online(offline=offline)
        return self._online

    def minimize(self, findings: list[FuzzFinding],
                 offline: OfflineArtifacts) -> dict[int, TestProgram]:
        """``offline`` is the shard report's own artifacts — a pure
        function of the configuration, so reusing them avoids paying the
        offline phase again in the parent."""
        minimized: dict[int, TestProgram] = {}
        recorder = telemetry.recorder()
        for index, finding in enumerate(findings):
            online = self._pipeline(offline)

            def still_leaks(program, kind=finding.kind,
                            detail=finding.detail):
                with recorder.span("minimize/probe"):
                    _, reports = _contained_run_once(online, program)
                recorder.count("minimize.probes")
                if kind == CRASH_KIND:
                    # A crash minimizes against its own signature: the
                    # trimmed program must still raise the *same*
                    # exception type, not just any exception.
                    return any(r.kind == CRASH_KIND
                               and r.exception == detail.exception
                               for r in reports)
                return kind in {report.kind for report in reports}

            # trim_program itself asserts the predicate on the input
            # first; a finding that does not reproduce in isolation
            # raises there and is simply not minimized.
            try:
                with recorder.span("minimize/finding"):
                    minimized[index] = trim_program(
                        finding.program, still_leaks)
            except ValueError:
                continue
        return minimized


def run_scenario(
    spec: ScenarioSpec,
    run_dir: str | Path | None = None,
    jobs: int | None = None,
    minimize: bool = True,
    on_shard=None,
    telemetry: bool = False,
) -> ScenarioOutcome:
    """Run a scenario, persisting into ``run_dir`` when given.

    With ``run_dir=None`` the campaign runs purely in memory (what the
    example scripts use).  ``on_shard(shard, report)`` is called after
    each shard is finished and persisted.  ``telemetry=True`` records
    spans/metrics/heartbeats (see :mod:`repro.telemetry`); campaign
    artifacts stay byte-identical either way.
    """
    store = None
    if run_dir is not None:
        store = CampaignStore.create(run_dir, spec)
    return _drive(spec, store, jobs, minimize, on_shard, resumed=[],
                  with_telemetry=telemetry)


def resume_scenario(
    run_dir: str | Path,
    jobs: int | None = None,
    minimize: bool = True,
    on_shard=None,
    telemetry: bool = False,
) -> ScenarioOutcome:
    """Resume an interrupted (or degraded) campaign from its run dir.

    Completed shards are loaded from the store; only missing shards
    execute — including previously quarantined ones, whose quarantine
    records are dropped so they get a fresh retry budget.  The final
    report is byte-identical to an uninterrupted run's (see the resume
    contract above).
    """
    store = CampaignStore.open(run_dir)
    store.prune_incomplete()
    store.reset_quarantine()
    resumed = store.completed_shards()
    return _drive(store.spec, store, jobs, minimize, on_shard,
                  resumed=resumed, with_telemetry=telemetry)


def _drive(
    spec: ScenarioSpec,
    store: CampaignStore | None,
    jobs: int | None,
    minimize: bool,
    on_shard,
    resumed: list[int],
    with_telemetry: bool = False,
) -> ScenarioOutcome:
    """Telemetry envelope around :func:`_drive_campaign`.

    When enabled, the whole drive runs under a root ``campaign`` span
    on a freshly-installed recorder; afterwards the parent's spans and
    metrics are written to ``telemetry/campaign.jsonl`` (shard logs are
    written by whichever process executed the shard) plus an atomic
    ``summary.json``, and the merged summary lands on the outcome.  An
    interrupted campaign writes no campaign log — the per-shard
    heartbeat files are the triage artifacts — but stays resumable
    exactly as without telemetry.
    """
    if not with_telemetry:
        return _drive_campaign(spec, store, jobs, minimize, on_shard,
                               resumed, telemetry_dir=None)
    recorder = telemetry.enable()
    telemetry_dir = None
    if store is not None:
        telemetry_dir = str(store.telemetry_dir(create=True))
    try:
        with recorder.span("campaign"):
            outcome = _drive_campaign(spec, store, jobs, minimize,
                                      on_shard, resumed,
                                      telemetry_dir=telemetry_dir)
    finally:
        telemetry.disable()
    outcome.telemetry = _finish_telemetry(recorder, store, spec)
    return outcome


def _finish_telemetry(recorder, store: CampaignStore | None,
                      spec: ScenarioSpec) -> TelemetrySummary:
    """Persist the parent recorder and build the merged run summary."""
    if store is None:
        return summarize_recorder(recorder)
    records: list[dict] = [telemetry_export.meta_record(
        "campaign", scenario=spec.name, seed=spec.seed,
        shards=spec.shards, iterations=spec.iterations,
    )]
    records.extend(span.to_dict() for span in recorder.spans())
    records.extend(telemetry_export.metric_records(recorder.metrics))
    tdir = store.telemetry_dir(create=True)
    telemetry_export.write_jsonl(tdir / CAMPAIGN_FILE, records)
    summary = summarize(load_run_telemetry(store.root))
    _atomic_summary(tdir / SUMMARY_FILE, summary)
    return summary


def _atomic_summary(path: Path, summary: TelemetrySummary) -> None:
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(summary.to_dict(), indent=2, sort_keys=True)
                   + "\n", encoding="utf-8")
    os.replace(tmp, path)


def _resilience_policy(spec: ScenarioSpec,
                       telemetry_dir: str | None) -> RetryPolicy:
    """The spec's resilience knobs as an executor :class:`RetryPolicy`.

    Worker-process isolation is forced whenever a whole-process failure
    mode is in play: an armed watchdog (a hung *thread* cannot be
    killed in-process) or an armed chaos plan (whose faults include
    SIGKILL and hangs) — so ``--jobs 1`` campaigns still survive them.
    """
    return RetryPolicy(
        max_retries=spec.max_shard_retries,
        unit_timeout_s=spec.unit_timeout_s,
        on_exhaust=spec.on_shard_failure,
        progress_dir=telemetry_dir,
        isolate=spec.unit_timeout_s > 0
        or faultinject.active_plan() is not None,
    )


def degraded_banner(failures: list[UnitFailure]) -> str:
    """The degraded-mode header prepended to a quarantined campaign's
    final report (see ``docs/resilience.md`` for how to read it)."""
    lines = [
        "!! DEGRADED CAMPAIGN !!",
        f"{len(failures)} shard(s) exhausted their retries and were "
        "quarantined; their iterations are EXCLUDED from every figure "
        "in this report.  `python -m repro resume <run_dir>` re-runs "
        "exactly these shards.",
        ascii_table(
            ["shard", "attempts", "failure", "last error"],
            [[f.shard, f.attempts, f.kind, f.summary()] for f in failures],
            title="Quarantined shards",
        ),
    ]
    return "\n".join(lines)


def _drive_campaign(
    spec: ScenarioSpec,
    store: CampaignStore | None,
    jobs: int | None,
    minimize: bool,
    on_shard,
    resumed: list[int],
    telemetry_dir: str | None,
) -> ScenarioOutcome:
    # The parent's Specure computes offline artifacts only when actually
    # needed (offline-only scenarios, resume, minimization): every shard
    # worker builds its own, and the merged report takes shard 0's, so
    # the common fresh-run path never pays the offline phase twice.
    specure = spec.build_specure()

    if spec.iterations == 0:
        # Offline-only scenario: no shards, no fuzzing, no merged report.
        offline = specure.offline()
        if store is not None:
            store.finalize(offline.summary(include_timings=False) + "\n")
        return ScenarioOutcome(spec=spec, offline=offline, report=None,
                               store=store)

    seeds = {
        shard: shard_seed(spec.seed, shard)
        for shard in range(spec.shards)
    }
    checkpoint_dir = None
    if store is not None and spec.checkpoint_every > 0:
        checkpoint_dir = str(store.checkpoint_dir(create=True))
    tasks = [
        ShardTask(
            spec=spec, shard=shard, seed=seeds[shard],
            telemetry_dir=telemetry_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=spec.checkpoint_every,
        )
        for shard in range(spec.shards)
        if shard not in resumed
    ]
    policy = _resilience_policy(spec, telemetry_dir)
    minimizer = _Minimizer(spec, specure)
    recorder = telemetry.recorder()
    fresh: dict[int, CampaignReport] = {}
    failures: dict[int, UnitFailure] = {}
    executed: list[int] = []
    try:
        for task, result in imap_shards(_execute_shard, tasks, jobs,
                                        policy):
            shard = task.shard
            if isinstance(result, UnitFailure):
                failures[shard] = result
                if store is not None:
                    store.record_quarantine(
                        shard, seeds[shard], result.attempts,
                        result.kind, result.summary())
                continue
            report, corpus = result
            if store is not None:
                minimized = (
                    minimizer.minimize(report.fuzz.findings, report.offline)
                    if minimize and report.fuzz.findings else {}
                )
                with recorder.span("store/persist"):
                    store.record_shard(shard, seeds[shard], report,
                                       corpus_entries=corpus,
                                       minimized=minimized)
                # The shard's artifacts supersede its checkpoint.
                store.clear_checkpoint(shard)
            fresh[shard] = report
            executed.append(shard)
            if on_shard is not None:
                on_shard(shard, report)
    except (KeyboardInterrupt, ShardExecutionError):
        # Completed shards are already persisted; mark the campaign
        # resumable whether a user interrupted it or a shard exhausted
        # its retries under `on_shard_failure = "fail"` (the
        # ShardExecutionError names the failing shard).
        if store is not None:
            store.set_status(STATUS_INTERRUPTED)
        raise
    executed.sort()  # completion order varies under the unordered pool
    quarantined = [failures[shard] for shard in sorted(failures)]

    # Offline artifacts for store-loaded shards: reuse a fresh shard's
    # (they are a pure function of the configuration) before paying for
    # a recomputation.
    if fresh:
        offline = fresh[min(fresh)].offline
    else:
        offline = specure.offline()
    ordered = []
    for shard in range(spec.shards):
        if shard in failures:
            continue  # quarantined: excluded from the merged report
        if shard in fresh:
            ordered.append(fresh[shard])
        else:
            ordered.append(store.load_shard_report(shard, offline))
    merged = None
    if ordered:
        with recorder.span("merge"):
            merged = merge_reports(ordered)
    if store is not None:
        parts = []
        if quarantined:
            parts.append(degraded_banner(quarantined))
        if merged is not None:
            parts.append(merged.render(include_timings=False))
        else:
            parts.append("no completed shards: every shard was quarantined")
        store.finalize("\n\n".join(parts) + "\n",
                       degraded=bool(quarantined))
    return ScenarioOutcome(
        spec=spec,
        offline=offline,
        report=merged,
        store=store,
        executed_shards=executed,
        resumed_shards=list(resumed),
        quarantined=quarantined,
    )


def replay_findings(run_dir: str | Path) -> list[ReplayResult]:
    """Re-confirm every stored finding without fuzzing.

    Each finding's persisted program (the minimized form when one was
    stored) runs once through a fresh online pipeline built from the
    stored scenario; the finding is confirmed when the same vulnerability
    kind is reported again.  Crash findings run through the contained
    probe, confirming when the program still raises.
    """
    store = CampaignStore.open(run_dir)
    spec = store.spec
    specure = spec.build_specure()
    online = specure.build_online()
    results = []
    for record in store.findings():
        payload = record["minimized"] or record["program"]
        program = program_from_dict(payload)
        _, reports = _contained_run_once(online, program)
        results.append(ReplayResult(
            shard=record["shard"],
            index=record["index"],
            kind=record["kind"],
            confirmed=record["kind"] in {r.kind for r in reports},
            used_minimized=record["minimized"] is not None,
            detector=record.get("detector", "ift"),
        ))
    return results
