"""Mid-shard checkpoints: snapshot and restore a running campaign.

A checkpoint captures *everything* the remaining iterations of a shard
depend on — the fuzzer's RNG streams (input scheduling and the mutation
engine), its coverage set and corpus (programs, discovery counts, pick
counters), the partial :class:`~repro.fuzz.fuzzer.CampaignResult`, and
the online phase's accumulated state (stats, misspeculation table,
reports, LP progress) — so a shard resumed from its checkpoint makes
exactly the draws and discoveries an uninterrupted run would have made
from that iteration on.  The fidelity contract is pinned by test:
checkpointed-resume ``report.txt`` is byte-identical to a straight run.

Records are JSON (one per shard, written atomically by the store into
``checkpoints/shard-NNNN.json``) and validate against the
``checkpoint`` record type in ``docs/telemetry.schema.json``.  The
golden-trace memo is deliberately *not* captured: it is a pure cache,
so a cold memo after resume changes wall-clock counters only, never
campaign output.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.online import OnlineStats
from repro.detection.windows import DetectedWindow
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.scenarios.store import (
    _decode_item,
    _encode_item,
    _stats_to_dict,
    _window_to_dict,
    campaign_result_from_dict,
    campaign_result_to_dict,
    program_from_dict,
    program_to_dict,
    report_from_dict,
    report_to_dict,
)

#: Bump when the state layout changes; mismatched checkpoints are
#: ignored (the shard restarts from iteration 0 — always correct).
CHECKPOINT_VERSION = 1


def checkpoint_filename(shard: int) -> str:
    """The per-shard checkpoint file name (mirrors shard artifacts)."""
    return f"shard-{shard:04d}.json"


def save_checkpoint(directory: str | Path, shard: int, record: dict) -> None:
    """Atomically write one shard's checkpoint (tmp + ``os.replace``),
    so a crash mid-write leaves the previous checkpoint intact."""
    path = Path(directory) / checkpoint_filename(shard)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(record) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def load_checkpoint(directory: str | Path, shard: int) -> dict | None:
    """Read a shard's checkpoint; a missing, torn, or mislabelled file
    degrades to None (restart from iteration 0 — always correct)."""
    path = Path(directory) / checkpoint_filename(shard)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or record.get("type") != "checkpoint" \
            or record.get("shard") != shard:
        return None
    return record


def checkpoint_record(shard: int, seed: int, next_iteration: int,
                      campaign, result) -> dict:
    """Snapshot a mid-run ``SpecureCampaign`` into a JSON-able record.

    ``result`` is the partial :class:`CampaignResult` the fuzz loop
    hands to its ``on_checkpoint`` hook; ``next_iteration`` is the
    first iteration the resumed shard will execute.
    """
    fuzzer, online = campaign.fuzzer, campaign.online
    state = {
        "rng": fuzzer.rng.getstate(),
        "mutator_rng": fuzzer.mutator.rng.getstate(),
        # Sets serialise sorted by repr (heterogeneous item tuples are
        # not order-comparable): byte-stable files, identical restores.
        "coverage": sorted(
            (_encode_item(item) for item in fuzzer.coverage), key=repr),
        "corpus": [
            {
                "program": program_to_dict(entry.program),
                "new_items": entry.new_items,
                "picks": entry.picks,
            }
            for entry in fuzzer.corpus.entries
        ],
        "result": campaign_result_to_dict(result),
        "online": {
            "stats": _stats_to_dict(online.stats),
            "mst": [_window_to_dict(w) for w in online.mst.rows],
            "reports": [report_to_dict(r) for r in online.reports],
            "lp_covered": sorted(online.lp_covered),
            "lp_curve": list(online.lp_curve),
            "events_examined": online.events_examined,
        },
    }
    return {
        "type": "checkpoint",
        "version": CHECKPOINT_VERSION,
        "shard": shard,
        "seed": seed,
        "next_iteration": next_iteration,
        "state": state,
    }


def restore_campaign(record: dict, campaign):
    """Load a checkpoint into a freshly-built ``SpecureCampaign``.

    Returns ``(start_iteration, resume_result)`` for
    :meth:`SpecureCampaign.run`, or ``(0, None)`` when the record's
    version does not match this build (restart from scratch).
    """
    if record.get("version") != CHECKPOINT_VERSION:
        return 0, None
    state = record["state"]
    fuzzer, online = campaign.fuzzer, campaign.online

    fuzzer.rng.setstate(state["rng"])
    fuzzer.mutator.rng.setstate(state["mutator_rng"])
    fuzzer.coverage = {_decode_item(item) for item in state["coverage"]}
    corpus = Corpus(max_entries=fuzzer.corpus.max_entries)
    for entry in state["corpus"]:
        program = program_from_dict(entry["program"])
        corpus.entries.append(
            CorpusEntry(program, entry["new_items"], picks=entry["picks"]))
        corpus._fingerprints.add(program.fingerprint())
    fuzzer.corpus = corpus

    saved = state["online"]
    online.stats = OnlineStats(**saved["stats"])
    online.mst.rows = [DetectedWindow(**w) for w in saved["mst"]]
    online.reports = [report_from_dict(r) for r in saved["reports"]]
    online.lp_covered = set(saved["lp_covered"])
    online.lp_curve = list(saved["lp_curve"])
    online.events_examined = saved["events_examined"]

    return record["next_iteration"], campaign_result_from_dict(state["result"])
