"""Declarative scenarios + the persistent campaign store.

The paper's experiments — and any new workload — are *scenarios*: one
validated bundle of design / vulnerability / coverage / seed / mutation /
stop-condition / shard knobs (:mod:`repro.scenarios.spec`), shipped as a
named registry entry (:mod:`repro.scenarios.registry`) or a TOML/JSON
file.  Running a scenario persists its corpus, findings (with minimized
trigger programs), coverage curves, and per-shard artifacts into a run
directory (:mod:`repro.scenarios.store`) that supports resuming an
interrupted campaign and replaying any stored finding as a regression
check (:mod:`repro.scenarios.runner`).

    from repro.scenarios import get_scenario, run_scenario

    outcome = run_scenario(get_scenario("spectre-v1"), run_dir="runs/s1")
    print(outcome.report.render())
"""

from repro.scenarios.registry import (
    get_scenario,
    register_scenario,
    render_scenarios,
    resolve_scenario,
    scenario_names,
    scenarios_to_dicts,
)
from repro.scenarios.runner import (
    ReplayResult,
    ScenarioOutcome,
    replay_findings,
    resume_scenario,
    run_scenario,
)
from repro.scenarios.spec import ScenarioError, ScenarioSpec
from repro.scenarios.store import CampaignStore, StoreError

__all__ = [
    "ScenarioSpec",
    "ScenarioError",
    "get_scenario",
    "register_scenario",
    "render_scenarios",
    "resolve_scenario",
    "scenario_names",
    "scenarios_to_dicts",
    "run_scenario",
    "resume_scenario",
    "replay_findings",
    "ScenarioOutcome",
    "ReplayResult",
    "CampaignStore",
    "StoreError",
]
