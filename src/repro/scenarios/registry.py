"""The built-in scenario registry: the paper's experiments, named.

Each entry bundles one experiment of the paper's evaluation (or a new
workload built from the same pieces) as a :class:`ScenarioSpec` runnable
with ``python -m repro run <name>``.  ``register_scenario`` adds
user-defined specs at runtime; scenario *files* (TOML/JSON) load through
:meth:`ScenarioSpec.load` without touching the registry.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioError, ScenarioSpec, _suggest
from repro.utils.text import ascii_table

_BUILTIN_SCENARIOS: tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="quickstart",
        description="The full pipeline in one minute: offline phase + a "
                    "short LP-guided campaign on the armed core",
        vulns=("mwait", "zenbleed"),
        monitor_dcache=True,
        seed=7,
        iterations=60,
    ),
    ScenarioSpec(
        name="quickstart-pruned",
        description="quickstart with static_prune: LP coverage groups "
                    "drop the statically-dead channels; detection is "
                    "untouched (repro.analysis)",
        vulns=("mwait", "zenbleed"),
        monitor_dcache=True,
        seed=7,
        iterations=60,
        static_prune=True,
    ),
    ScenarioSpec(
        name="spectre-v1",
        description="Spectre hunt with the special speculative seeds; the "
                    "data cache joins the monitored observables (§4.2)",
        monitor_dcache=True,
        seed=3,
        iterations=400,
        stop_kind="spectre_v1",
    ),
    ScenarioSpec(
        name="spectre-v1-no-seeds",
        description="The with/without-seeds ablation arm: same hunt on "
                    "random seeds only (paper: 49 min vs 1.5 h)",
        monitor_dcache=True,
        seed=3,
        use_special_seeds=False,
        random_seed_count=6,
        iterations=400,
        stop_kind="spectre_v1",
    ),
    ScenarioSpec(
        name="zenbleed-mwait",
        description="The emulated direct channels (§4.2): fuzz the armed "
                    "core until the Zenbleed leak is root-caused",
        vulns=("mwait", "zenbleed"),
        seed=1,
        iterations=200,
        stop_kind="zenbleed",
    ),
    ScenarioSpec(
        name="lp-coverage-race",
        description="Figure 2, LP arm: three seed streams of LP-guided "
                    "fuzzing, merged onto one coverage curve",
        vulns=(),
        seed=0,
        iterations=150,
        shards=3,
    ),
    ScenarioSpec(
        name="code-coverage-race",
        description="Figure 2, baseline arm: identical campaign guided by "
                    "traditional code coverage",
        vulns=(),
        coverage="code",
        seed=0,
        iterations=150,
        shards=3,
    ),
    ScenarioSpec(
        name="nested-speculation-stress",
        description="New workload: aggressive mutation (5 rounds, heavy "
                    "splicing) to pile up nested misspeculated windows",
        monitor_dcache=True,
        seed=13,
        splice_probability=0.35,
        mutation_rounds=5,
        iterations=250,
    ),
    ScenarioSpec(
        name="dcache-monitor-sweep",
        description="New workload: four shards sweeping seed streams with "
                    "the data cache monitored, merged into one report",
        monitor_dcache=True,
        seed=5,
        iterations=100,
        shards=4,
    ),
    ScenarioSpec(
        name="spectre-v1-contract",
        description="Model-based relational Spectre hunt: ct-seq contract "
                    "traces on the golden ISS vs hardware observation "
                    "traces, no IFG needed (Revizor-style)",
        detector="contract",
        contract="ct-seq",
        seed=3,
        iterations=200,
        stop_kind="contract_ct_seq",
    ),
    ScenarioSpec(
        name="contract-ablation",
        description="The same hunt under ct-cond: conditional-branch "
                    "speculation is contract-allowed, so plain v1 leaks "
                    "stop counting as violations",
        detector="contract",
        contract="ct-cond",
        seed=3,
        iterations=150,
    ),
    ScenarioSpec(
        name="spectre-ssb",
        description="Spectre-v4 hunt: store-bypass speculation armed, "
                    "sequential-model contract, generation scoped to the "
                    "alu/div/load/store gadget shape",
        vulns=(),
        detector="contract",
        contract="ct-seq",
        speculation=("ssb",),
        instruction_categories=("alu", "div", "load", "store"),
        seed=3,
        iterations=120,
        stop_kind="contract_ct_seq",
    ),
    ScenarioSpec(
        name="spectre-ssb-ablation",
        description="The same armed core under ct-seq+ssb: store-bypass "
                    "misspeculation is contract-allowed, so the seeded "
                    "v4 leak stops counting as a violation",
        vulns=(),
        detector="contract",
        contract="ct-seq",
        execution_clauses=("ssb",),
        speculation=("ssb",),
        instruction_categories=("alu", "div", "load", "store"),
        seed=3,
        iterations=40,
    ),
    ScenarioSpec(
        name="meltdown",
        description="Fault-speculation hunt: transient protected-region "
                    "loads armed, sequential-model contract, generation "
                    "scoped to alu/load gadgets",
        vulns=(),
        detector="contract",
        contract="ct-seq",
        speculation=("fault",),
        instruction_categories=("alu", "load"),
        seed=3,
        iterations=120,
        stop_kind="contract_ct_seq",
    ),
    ScenarioSpec(
        name="meltdown-ablation",
        description="The same armed core under ct-seq+fault: the "
                    "transient faulting load is contract-allowed, so the "
                    "Meltdown-style leak stops counting as a violation",
        vulns=(),
        detector="contract",
        contract="ct-seq",
        execution_clauses=("fault",),
        speculation=("fault",),
        instruction_categories=("alu", "load"),
        seed=3,
        iterations=40,
    ),
    ScenarioSpec(
        name="spectre-rsb",
        description="Return-stack hunt: RAS-misprediction seed corpus "
                    "armed, sequential-model contract, generation scoped "
                    "to alu/div/load/store/jump gadgets",
        vulns=(),
        detector="contract",
        contract="ct-seq",
        speculation=("ret",),
        instruction_categories=("alu", "div", "load", "store", "jump"),
        seed=3,
        iterations=120,
        stop_kind="contract_ct_seq",
    ),
    ScenarioSpec(
        name="spectre-rsb-ablation",
        description="The same hunt under ct-seq+ret: return-stack "
                    "misspeculation is contract-allowed, so the seeded "
                    "RSB leak stops counting as a violation",
        vulns=(),
        detector="contract",
        contract="ct-seq",
        execution_clauses=("ret",),
        speculation=("ret",),
        instruction_categories=("alu", "div", "load", "store", "jump"),
        seed=3,
        iterations=40,
    ),
    ScenarioSpec(
        name="composed-clauses",
        description="Clause composition across shards: ct-cond+ssb "
                    "contract-allows branch and store-bypass speculation "
                    "together on the ssb-armed core",
        vulns=(),
        detector="contract",
        contract="ct-cond",
        execution_clauses=("ssb",),
        speculation=("ssb",),
        seed=11,
        iterations=60,
        shards=2,
    ),
    ScenarioSpec(
        name="spec-cpu-quickstart",
        description="The Verilog route in one minute: elaborate the "
                    "speculative RTL core and run a short LP-guided "
                    "campaign on it",
        design="spec-cpu",
        vulns=(),
        monitor_dcache=True,
        seed=7,
        iterations=12,
    ),
    ScenarioSpec(
        name="spec-cpu-spectre-v1",
        description="Spectre hunt on the Verilog core: both detectors "
                    "cross-validated until the seeded transient leak "
                    "is found",
        design="spec-cpu",
        vulns=(),
        monitor_dcache=True,
        detector="both",
        contract="ct-seq",
        inputs_per_class=2,
        seed=3,
        iterations=40,
        stop_kind="spectre_v1",
    ),
    ScenarioSpec(
        name="offline-analysis",
        description="Offline phase only (§4.1): IFG build + PDLC "
                    "extraction numbers for the small design",
        vulns=("mwait", "zenbleed"),
        iterations=0,
    ),
)

_REGISTRY: dict[str, ScenarioSpec] = {
    spec.name: spec for spec in _BUILTIN_SCENARIOS
}


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario; unknown names get a suggestion."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}{_suggest(name, scenario_names())}; "
            f"`python -m repro list-scenarios` prints the registry"
        ) from None


def resolve_scenario(reference: str) -> ScenarioSpec:
    """A scenario by registry name, or from a ``.toml``/``.json`` path.

    The one reference-resolution rule shared by every consumer that
    accepts "a scenario" on a command line (``python -m repro run``,
    ``python -m repro bench``, :func:`repro.perf.bench.run_bench`).
    """
    if reference.endswith((".toml", ".json")):
        return ScenarioSpec.load(reference)
    return get_scenario(reference)


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if spec.name in _REGISTRY and not replace:
        raise ScenarioError(
            f"scenario {spec.name!r} is already registered; pass "
            f"replace=True to overwrite it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def scenarios_to_dicts() -> list[dict]:
    """The registry as JSON-serialisable rows (``list-scenarios
    --format json``).

    Each row pairs the human-facing summary columns of
    :func:`render_scenarios` with the full ``spec`` dict, which
    round-trips through :meth:`ScenarioSpec.from_dict` — so the JSON
    output doubles as a machine-readable export of every registered
    protocol.
    """
    rows = []
    for name in scenario_names():
        spec = _REGISTRY[name]
        rows.append({
            "name": name,
            "design": spec.design,
            "detector": spec.detector,
            "contract": (
                spec.effective_contract() if spec.detector != "ift" else None
            ),
            "coverage": spec.coverage,
            "vulns": list(spec.vulns),
            "monitor_dcache": spec.monitor_dcache,
            "shards": spec.shards,
            "iterations": spec.iterations,
            "stop": spec.stop_kind,
            "description": spec.description,
            "spec": spec.to_dict(),
        })
    return rows


def render_scenarios() -> str:
    """The registry as a table (the ``list-scenarios`` CLI output)."""
    rows = []
    for name in scenario_names():
        spec = _REGISTRY[name]
        if spec.iterations == 0:
            shape = "offline only"
        else:
            shape = f"{spec.shards} x {spec.iterations} iters"
        if spec.detector == "ift":
            detector = "ift"
        else:
            detector = f"{spec.detector}:{spec.effective_contract()}"
        rows.append([
            name,
            spec.design,
            detector,
            spec.coverage,
            "+".join(spec.vulns) or "-",
            "yes" if spec.monitor_dcache else "no",
            shape,
            spec.stop_kind or "-",
            spec.description,
        ])
    return ascii_table(
        ["scenario", "design", "detector", "coverage", "armed vulns",
         "dcache", "shape", "stops at", "description"],
        rows,
        title="Registered scenarios (python -m repro run <scenario>)",
    )
