"""The persistent campaign store: resumable, replayable run directories.

A campaign executed through :mod:`repro.scenarios.runner` persists its
artifacts under one run directory as it goes:

``scenario.json``
    The exact :class:`~repro.scenarios.spec.ScenarioSpec` that ran.
``meta.json``
    Schema version, campaign status (``running`` / ``interrupted`` /
    ``complete``), base seed and shard count.
``shards/shard-NNNN.json``
    One complete shard's campaign artifacts (fuzz result with discovery
    log, online stats, MST rows, leak reports) — written atomically when
    the shard finishes, so an interrupt never leaves a half shard that
    counts as done.
``findings.jsonl``
    One line per detector finding: the triggering program, its trimmed
    (minimized) form when available, the producing ``detector``
    pathway (``ift`` or ``contract``), and the full report — a
    root-caused leak report or a contract violation, tagged with the
    same discriminator — enough to re-confirm the finding later
    without re-fuzzing (``replay``).
``corpus.jsonl``
    The retained corpus entries of each shard (program + the coverage
    items it discovered on entry), for seeding follow-up campaigns.
``coverage.jsonl``
    One line per shard: its seed and covered-items-per-iteration curve.
``report.txt``
    The merged campaign report, rendered *without* wall-clock timings so
    an interrupted-then-resumed campaign is byte-identical to an
    uninterrupted one at the same seed.

Everything round-trips: :meth:`CampaignStore.load_shard_report` rebuilds
exactly the :class:`~repro.core.report.CampaignReport` the shard worker
produced (offline artifacts are recomputed from the spec — they are a
pure function of the configuration and are never stored).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.contracts.detector import ContractViolation
from repro.core.online import OnlineStats
from repro.core.report import CampaignReport
from repro.detection.mst import MisspeculationTable
from repro.detection.vulnerability import LeakReport, RootCause
from repro.detection.windows import DetectedWindow
from repro.fuzz.crash import CrashReport
from repro.fuzz.fuzzer import CampaignResult, FuzzFinding
from repro.fuzz.input import TestProgram
from repro.scenarios.spec import ScenarioError, ScenarioSpec

SCHEMA_VERSION = 1

STATUS_RUNNING = "running"
STATUS_INTERRUPTED = "interrupted"
STATUS_COMPLETE = "complete"
#: Complete, but with quarantined shards missing from the merge.
STATUS_DEGRADED = "degraded"


class StoreError(RuntimeError):
    """A run directory is missing, malformed, or would be clobbered."""


# ----------------------------------------------------------------------
# JSON codecs for the campaign artifact types
# ----------------------------------------------------------------------

def _encode_item(item):
    """Coverage items are flat tuples of str/int; JSON turns tuples into
    arrays, so decoding maps arrays back to tuples (recursively)."""
    if isinstance(item, (list, tuple)):
        return [_encode_item(part) for part in item]
    return item


def _decode_item(item):
    if isinstance(item, list):
        return tuple(_decode_item(part) for part in item)
    return item


def program_to_dict(program: TestProgram) -> dict:
    return {
        "words": list(program.words),
        "reg_init": list(program.reg_init),
        "data_seed": program.data_seed,
        "max_cycles": program.max_cycles,
        "label": program.label,
        "memory_overlay": {
            str(address): value
            for address, value in sorted(program.memory_overlay.items())
        },
    }


def program_from_dict(data: dict) -> TestProgram:
    return TestProgram(
        words=list(data["words"]),
        reg_init=list(data["reg_init"]),
        data_seed=data["data_seed"],
        max_cycles=data["max_cycles"],
        label=data["label"],
        memory_overlay={
            int(address): value
            for address, value in data["memory_overlay"].items()
        },
    )


def leak_report_to_dict(report: LeakReport) -> dict:
    return {
        "kind": report.kind,
        "window_start": report.window_start,
        "window_end": report.window_end,
        "window_pc": report.window_pc,
        "window_word": report.window_word,
        "leaked_signals": list(report.leaked_signals),
        "root_causes": [
            {"source": cause.source, "dest": cause.dest,
             "path": list(cause.path)}
            for cause in report.root_causes
        ],
    }


def leak_report_from_dict(data: dict) -> LeakReport:
    return LeakReport(
        kind=data["kind"],
        window_start=data["window_start"],
        window_end=data["window_end"],
        window_pc=data["window_pc"],
        window_word=data["window_word"],
        leaked_signals=tuple(data["leaked_signals"]),
        root_causes=tuple(
            RootCause(source=cause["source"], dest=cause["dest"],
                      path=tuple(cause["path"]))
            for cause in data["root_causes"]
        ),
    )


def contract_violation_to_dict(violation: ContractViolation) -> dict:
    return {
        "kind": violation.kind,
        "clause": violation.clause,
        "input_class": violation.input_class,
        "class_size": violation.class_size,
        "member_a": violation.member_a,
        "member_b": violation.member_b,
        "diverged_at": violation.diverged_at,
        "observation_a": _encode_item(violation.observation_a),
        "observation_b": _encode_item(violation.observation_b),
        "secret_lines": list(violation.secret_lines),
    }


def contract_violation_from_dict(data: dict) -> ContractViolation:
    return ContractViolation(
        kind=data["kind"],
        clause=data["clause"],
        input_class=data["input_class"],
        class_size=data["class_size"],
        member_a=data["member_a"],
        member_b=data["member_b"],
        diverged_at=data["diverged_at"],
        observation_a=_decode_item(data["observation_a"]),
        observation_b=_decode_item(data["observation_b"]),
        secret_lines=tuple(data["secret_lines"]),
    )


def crash_report_to_dict(report: CrashReport) -> dict:
    return {
        "kind": report.kind,
        "phase": report.phase,
        "exception": report.exception,
        "message": report.message,
    }


def crash_report_from_dict(data: dict) -> CrashReport:
    return CrashReport(
        kind=data["kind"],
        phase=data["phase"],
        exception=data["exception"],
        message=data["message"],
    )


def detector_of(detail) -> str:
    """Which detection pathway produced a finding detail / report."""
    if isinstance(detail, ContractViolation):
        return "contract"
    if isinstance(detail, CrashReport):
        return "crash"
    return "ift"


def report_to_dict(report) -> dict:
    """Serialise either pathway's report, tagged with its detector.

    The ``detector`` discriminator is what keeps a persisted campaign's
    finding kinds faithful on reload — without it every stored report
    would decode as an IFT :class:`LeakReport`.
    """
    if isinstance(report, ContractViolation):
        return {"detector": "contract", **contract_violation_to_dict(report)}
    if isinstance(report, CrashReport):
        return {"detector": "crash", **crash_report_to_dict(report)}
    return {"detector": "ift", **leak_report_to_dict(report)}


def report_from_dict(data: dict):
    """Decode a tagged report; untagged data is legacy IFT (schema 1
    stores written before the contract pathway existed)."""
    if data.get("detector") == "contract":
        return contract_violation_from_dict(data)
    if data.get("detector") == "crash":
        return crash_report_from_dict(data)
    payload = dict(data)
    payload.pop("detector", None)
    return leak_report_from_dict(payload)


#: Finding details the store can round-trip through JSON.
_SERIALIZABLE_DETAILS = (LeakReport, ContractViolation, CrashReport)


def _finding_to_dict(finding: FuzzFinding) -> dict:
    detail = finding.detail
    return {
        "iteration": finding.iteration,
        "kind": finding.kind,
        "detector": detector_of(detail),
        "program": program_to_dict(finding.program),
        "detail": (
            report_to_dict(detail)
            if isinstance(detail, _SERIALIZABLE_DETAILS) else None
        ),
    }


def _finding_from_dict(data: dict) -> FuzzFinding:
    detail = data.get("detail")
    return FuzzFinding(
        iteration=data["iteration"],
        kind=data["kind"],
        detail=None if detail is None else report_from_dict(detail),
        program=program_from_dict(data["program"]),
    )


def campaign_result_to_dict(result: CampaignResult) -> dict:
    return {
        "iterations": result.iterations,
        "coverage_curve": list(result.coverage_curve),
        "corpus_size": result.corpus_size,
        "executed_programs": result.executed_programs,
        "discovery_log": [
            [iteration, _encode_item(item)]
            for iteration, item in result.discovery_log
        ],
        "findings": [_finding_to_dict(f) for f in result.findings],
    }


def campaign_result_from_dict(data: dict) -> CampaignResult:
    result = CampaignResult(iterations=data["iterations"])
    result.coverage_curve = list(data["coverage_curve"])
    result.corpus_size = data["corpus_size"]
    result.executed_programs = data["executed_programs"]
    result.discovery_log = [
        (iteration, _decode_item(item))
        for iteration, item in data["discovery_log"]
    ]
    result.findings = [_finding_from_dict(f) for f in data["findings"]]
    return result


def _stats_to_dict(stats: OnlineStats) -> dict:
    return dict(vars(stats))


def _window_to_dict(window: DetectedWindow) -> dict:
    return {
        "tag": window.tag, "start": window.start, "end": window.end,
        "pc": window.pc, "word": window.word,
        "mispredicted": window.mispredicted, "resolved": window.resolved,
    }


def shard_report_to_dict(shard: int, seed: int,
                         report: CampaignReport) -> dict:
    """Serialise one shard's report (offline artifacts excluded: they
    are recomputed from the scenario on load)."""
    return {
        "shard": shard,
        "seed": seed,
        "detectors": list(report.detectors),
        "static_prune": report.static_prune,
        "fuzz": campaign_result_to_dict(report.fuzz),
        "stats": _stats_to_dict(report.stats),
        "mst": [_window_to_dict(w) for w in report.mst.rows],
        "reports": [report_to_dict(r) for r in report.reports],
    }


def shard_report_from_dict(data: dict, offline) -> CampaignReport:
    return CampaignReport(
        offline=offline,
        fuzz=campaign_result_from_dict(data["fuzz"]),
        stats=OnlineStats(**data["stats"]),
        mst=MisspeculationTable(
            rows=[DetectedWindow(**w) for w in data["mst"]]
        ),
        reports=[report_from_dict(r) for r in data["reports"]],
        # Stores written before the contract pathway carry no detector
        # list; they were IFT-only by construction.  Likewise stores
        # written before the static_prune knob never pruned.
        detectors=tuple(data.get("detectors", ("ift",))),
        static_prune=data.get("static_prune", False),
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers never observe a partial file."""
    temporary = path.with_suffix(path.suffix + ".tmp")
    temporary.write_text(text)
    os.replace(temporary, path)


class CampaignStore:
    """One campaign's run directory (create, append, resume, replay)."""

    SCENARIO_FILE = "scenario.json"
    META_FILE = "meta.json"
    SHARD_DIR = "shards"
    FINDINGS_FILE = "findings.jsonl"
    CORPUS_FILE = "corpus.jsonl"
    COVERAGE_FILE = "coverage.jsonl"
    REPORT_FILE = "report.txt"
    TELEMETRY_DIR = "telemetry"
    QUARANTINE_FILE = "quarantine.jsonl"
    CHECKPOINT_DIR = "checkpoints"

    def __init__(self, root: str | Path, spec: ScenarioSpec, meta: dict):
        self.root = Path(root)
        self.spec = spec
        self.meta = meta

    def telemetry_dir(self, create: bool = False) -> Path:
        """Where ``--telemetry`` artifacts live (per-shard JSONL logs,
        the campaign log, and the atomic summary — see
        :mod:`repro.telemetry.runstats`).  Shard logs merge by shard id
        exactly like the shard artifacts under :attr:`SHARD_DIR`."""
        path = self.root / self.TELEMETRY_DIR
        if create:
            path.mkdir(parents=True, exist_ok=True)
        return path

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, root: str | Path, spec: ScenarioSpec) -> "CampaignStore":
        """Start a fresh campaign directory (refuses to clobber one)."""
        root = Path(root)
        if (root / cls.SCENARIO_FILE).exists():
            raise StoreError(
                f"{root} already holds a campaign; resume it with "
                f"`python -m repro resume {root}` or pick another --out"
            )
        (root / cls.SHARD_DIR).mkdir(parents=True, exist_ok=True)
        meta = {
            "schema": SCHEMA_VERSION,
            "status": STATUS_RUNNING,
            "scenario": spec.name,
            "base_seed": spec.seed,
            "shards": spec.shards,
        }
        store = cls(root, spec, meta)
        _atomic_write(root / cls.SCENARIO_FILE, spec.to_json())
        store._write_meta()
        return store

    @classmethod
    def open(cls, root: str | Path) -> "CampaignStore":
        """Open an existing campaign directory."""
        root = Path(root)
        scenario_path = root / cls.SCENARIO_FILE
        if not scenario_path.exists():
            raise StoreError(
                f"{root} is not a campaign directory "
                f"(missing {cls.SCENARIO_FILE})"
            )
        try:
            spec = ScenarioSpec.from_json(
                scenario_path.read_text(), source=str(scenario_path)
            )
        except ScenarioError as error:
            raise StoreError(f"cannot load {scenario_path}: {error}") from None
        try:
            meta = json.loads((root / cls.META_FILE).read_text())
        except FileNotFoundError:
            raise StoreError(
                f"{root} has a scenario but no {cls.META_FILE} — the "
                f"campaign was interrupted during creation; delete the "
                f"directory and run the scenario again"
            ) from None
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{root / cls.META_FILE} is not valid JSON ({error}); "
                f"the store is corrupt"
            ) from None
        if meta.get("schema") != SCHEMA_VERSION:
            raise StoreError(
                f"{root} uses store schema {meta.get('schema')!r}; this "
                f"build reads schema {SCHEMA_VERSION}"
            )
        return cls(root, spec, meta)

    @staticmethod
    def is_store(root: str | Path) -> bool:
        return (Path(root) / CampaignStore.SCENARIO_FILE).exists()

    def _write_meta(self) -> None:
        _atomic_write(
            self.root / self.META_FILE,
            json.dumps(self.meta, indent=2) + "\n",
        )

    @property
    def status(self) -> str:
        return self.meta["status"]

    def set_status(self, status: str) -> None:
        self.meta["status"] = status
        self._write_meta()

    # -- shard artifacts ----------------------------------------------------

    def _shard_path(self, shard: int) -> Path:
        return self.root / self.SHARD_DIR / f"shard-{shard:04d}.json"

    def completed_shards(self) -> list[int]:
        """Indices of shards whose artifacts are fully persisted."""
        directory = self.root / self.SHARD_DIR
        if not directory.is_dir():
            return []
        indices = []
        for path in directory.glob("shard-*.json"):
            indices.append(int(path.stem.split("-")[1]))
        return sorted(indices)

    def record_shard(
        self,
        shard: int,
        seed: int,
        report: CampaignReport,
        corpus_entries: list[tuple[TestProgram, int]] = (),
        minimized: dict[int, TestProgram] | None = None,
    ) -> None:
        """Persist one finished shard: report, findings, corpus, curve.

        ``minimized`` maps a finding's index within ``report.fuzz.findings``
        to its trimmed program.  The shard file is written last and
        atomically — only then does the shard count as completed, so the
        append-only JSONL files may hold partial data for a crashed
        shard but ``completed_shards`` never lies.
        """
        minimized = minimized or {}
        with (self.root / self.FINDINGS_FILE).open("a") as stream:
            for index, finding in enumerate(report.fuzz.findings):
                record = {
                    "shard": shard,
                    "seed": seed,
                    "index": index,
                    "iteration": finding.iteration,
                    "kind": finding.kind,
                    "detector": detector_of(finding.detail),
                    "program": program_to_dict(finding.program),
                    "minimized": (
                        program_to_dict(minimized[index])
                        if index in minimized else None
                    ),
                    "report": (
                        report_to_dict(finding.detail)
                        if isinstance(finding.detail, _SERIALIZABLE_DETAILS)
                        else None
                    ),
                }
                stream.write(json.dumps(record) + "\n")
        with (self.root / self.CORPUS_FILE).open("a") as stream:
            for program, new_items in corpus_entries:
                stream.write(json.dumps({
                    "shard": shard,
                    "new_items": new_items,
                    "program": program_to_dict(program),
                }) + "\n")
        with (self.root / self.COVERAGE_FILE).open("a") as stream:
            stream.write(json.dumps({
                "shard": shard,
                "seed": seed,
                "curve": list(report.fuzz.coverage_curve),
            }) + "\n")
        _atomic_write(
            self._shard_path(shard),
            json.dumps(shard_report_to_dict(shard, seed, report)) + "\n",
        )

    def load_shard_report(self, shard: int, offline) -> CampaignReport:
        """Rebuild a persisted shard's :class:`CampaignReport`."""
        path = self._shard_path(shard)
        if not path.exists():
            raise StoreError(f"shard {shard} has no artifacts in {self.root}")
        return shard_report_from_dict(json.loads(path.read_text()), offline)

    # -- findings / corpus readback -----------------------------------------

    def _read_jsonl(self, name: str) -> list[dict]:
        """Decode one append-only JSONL file.

        A process killed mid-append can leave a torn *final* line; that
        is expected crash debris (the line's shard never completed and
        resume re-runs it), so it is dropped.  An undecodable line
        anywhere else means real corruption and raises.
        """
        path = self.root / name
        if not path.exists():
            return []
        lines = [line for line in path.read_text().splitlines()
                 if line.strip()]
        records = []
        for index, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break
                raise StoreError(
                    f"{path} line {index + 1} is not valid JSON; the "
                    f"store is corrupt beyond a torn trailing write"
                ) from None
        return records

    def findings(self) -> list[dict]:
        """All persisted finding records (decoded JSONL lines)."""
        return self._read_jsonl(self.FINDINGS_FILE)

    def corpus_entries(self) -> list[tuple[int, TestProgram, int]]:
        """All persisted corpus entries as (shard, program, new_items)."""
        return [
            (record["shard"], program_from_dict(record["program"]),
             record["new_items"])
            for record in self._read_jsonl(self.CORPUS_FILE)
        ]

    def coverage_curves(self) -> list[dict]:
        return self._read_jsonl(self.COVERAGE_FILE)

    def prune_incomplete(self) -> None:
        """Drop JSONL records of shards that never completed.

        The append-only files may hold partial data for a shard that was
        interrupted mid-run; a resume re-executes that shard from
        scratch, so its stale records are filtered out first to keep the
        findings/corpus/coverage files exactly one record set per shard.
        """
        completed = set(self.completed_shards())
        for name in (self.FINDINGS_FILE, self.CORPUS_FILE,
                     self.COVERAGE_FILE):
            if not (self.root / name).exists():
                continue
            kept = [r for r in self._read_jsonl(name)
                    if r["shard"] in completed]
            # Rewrite unconditionally: _read_jsonl already dropped any
            # torn trailing fragment, and leaving one in place would let
            # the re-run shard's first append concatenate onto it.
            _atomic_write(
                self.root / name,
                "".join(json.dumps(r) + "\n" for r in kept),
            )

    # -- quarantine (retry-exhausted shards) --------------------------------

    def record_quarantine(self, shard: int, seed: int, attempts: int,
                          failure: str, error: str) -> None:
        """Append one retry-exhausted shard to ``quarantine.jsonl``.

        ``failure`` names the terminal failure mode (``exception`` /
        ``worker-died`` / ``timeout``); ``error`` is its one-line
        detail.  Quarantined shards are excluded from the merge — the
        campaign finishes in degraded mode and a later ``resume``
        re-runs exactly these shards.
        """
        with (self.root / self.QUARANTINE_FILE).open("a") as stream:
            stream.write(json.dumps({
                "type": "quarantine",
                "shard": shard,
                "seed": seed,
                "attempts": attempts,
                "failure": failure,
                "error": error,
            }) + "\n")

    def quarantined(self) -> list[dict]:
        """All quarantine records, in shard order."""
        records = self._read_jsonl(self.QUARANTINE_FILE)
        return sorted(records, key=lambda record: record["shard"])

    def reset_quarantine(self) -> None:
        """Drop the quarantine list (a resume re-runs those shards)."""
        path = self.root / self.QUARANTINE_FILE
        if path.exists():
            path.unlink()

    # -- mid-shard checkpoints ----------------------------------------------

    def checkpoint_dir(self, create: bool = False) -> Path:
        path = self.root / self.CHECKPOINT_DIR
        if create:
            path.mkdir(parents=True, exist_ok=True)
        return path

    def checkpoint_path(self, shard: int) -> Path:
        return self.checkpoint_dir() / f"shard-{shard:04d}.json"

    def write_checkpoint(self, shard: int, record: dict) -> None:
        """Atomically persist one shard's mid-run checkpoint record."""
        self.checkpoint_dir(create=True)
        _atomic_write(self.checkpoint_path(shard),
                      json.dumps(record) + "\n")

    def read_checkpoint(self, shard: int) -> dict | None:
        """The shard's last checkpoint, or None.

        A missing, torn, or wrong-shard checkpoint degrades to None —
        the shard restarts from iteration 0, which is always correct,
        just slower.
        """
        path = self.checkpoint_path(shard)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if record.get("type") != "checkpoint" or record.get("shard") != shard:
            return None
        return record

    def clear_checkpoint(self, shard: int) -> None:
        """Drop a completed shard's checkpoint (its artifacts supersede it)."""
        path = self.checkpoint_path(shard)
        if path.exists():
            path.unlink()

    # -- final report -------------------------------------------------------

    def finalize(self, report_text: str, degraded: bool = False) -> None:
        """Write the merged report and mark the campaign complete
        (``degraded`` when quarantined shards are missing from it)."""
        _atomic_write(self.root / self.REPORT_FILE, report_text)
        self.set_status(STATUS_DEGRADED if degraded else STATUS_COMPLETE)

    def report_text(self) -> str:
        path = self.root / self.REPORT_FILE
        if not path.exists():
            raise StoreError(f"{self.root} has no final report yet")
        return path.read_text()
