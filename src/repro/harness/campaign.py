"""Campaign runners for the paper's experiments.

Wraps the Specure facade for the experiment shapes the evaluation
needs: *coverage campaigns* (Figure 2: covered-PDLC-versus-iteration
curves, repeated and averaged), *detection campaigns* (Table 2 /
detection-time: iterations until a given vulnerability class is first
reported), and *time-budgeted campaigns* (the paper's 24-hour runs,
scaled to seconds).

Every runner takes ``jobs``: with ``jobs >= 2`` the independent units
of work (coverage repeats, detection kinds, timed shards) fan out
across worker processes via :mod:`repro.harness.parallel`, with
deterministic per-shard seeds, and the results merge back to exactly
what the serial run produces — see the determinism contract in that
module's docstring.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.boom.config import BoomConfig
from repro.core.report import CampaignReport
from repro.core.specure import Specure, stop_on_kind


@dataclass
class CoverageCurve:
    """One campaign's covered-PDLC-per-iteration series."""

    label: str
    values: list[int] = field(default_factory=list)

    def as_points(self, stride: int = 1) -> list[tuple[float, float]]:
        return [
            (index + 1, value)
            for index, value in enumerate(self.values)
            if index % stride == 0 or index == len(self.values) - 1
        ]

    def final(self) -> int:
        return self.values[-1] if self.values else 0

    def iterations_to(self, target: int) -> int | None:
        for index, value in enumerate(self.values):
            if value >= target:
                return index + 1
        return None


def align_curves(curves: list[CoverageCurve]) -> list[list[int]]:
    """Pad every curve to the longest length with its final value.

    Cumulative coverage holds its last count once a campaign stops, so a
    run that ended early (deadline, stop predicate) is extended with its
    final value rather than silently truncating the others.
    """
    length = max((len(curve.values) for curve in curves), default=0)
    padded = []
    for curve in curves:
        tail = curve.values[-1] if curve.values else 0
        padded.append(
            curve.values + [tail] * (length - len(curve.values))
        )
    return padded


def mean_curve(curves: list[CoverageCurve], label: str) -> CoverageCurve:
    """Pointwise mean of the curves (the paper averages 3 runs).

    Unequal-length curves are aligned first (shorter curves hold their
    final coverage count), so an early-stopping repeat no longer drags
    the Figure 2 average down to the shortest run.
    """
    if not curves:
        raise ValueError("no curves to average")
    padded = align_curves(curves)
    length = len(padded[0])
    values = [
        sum(values[index] for values in padded) / len(curves)
        for index in range(length)
    ]
    return CoverageCurve(label=label, values=[int(v) for v in values])


def _coverage_repeat(
    config: BoomConfig,
    coverage: str,
    iterations: int,
    seed: int,
    repeat: int,
) -> CoverageCurve:
    """One coverage-campaign repeat — the unit both the serial loop and
    the parallel shard workers execute, so their results are identical."""
    specure = Specure(config, seed=seed, coverage=coverage)
    campaign = specure.build_campaign()
    campaign.run(iterations)
    return CoverageCurve(
        label=f"{coverage}#{repeat}",
        values=list(campaign.online.lp_curve),
    )


def _coverage_repeat_star(args) -> CoverageCurve:
    """Picklable adapter for pool workers (module-level by necessity)."""
    return _coverage_repeat(*args)


def run_coverage_campaign(
    config: BoomConfig,
    coverage: str,
    iterations: int,
    repeats: int = 3,
    base_seed: int = 0,
    jobs: int | None = None,
) -> list[CoverageCurve]:
    """Run ``repeats`` fuzzing campaigns with the given coverage feedback.

    Both arms (LP and code coverage) report their progress in *covered
    PDLCs* — Figure 2's y-axis — regardless of which metric guided the
    fuzzer.  For the code-coverage arm this means the LP calculator runs
    as a passive observer on every iteration.

    With ``jobs >= 2`` the repeats run in parallel worker processes;
    repeat ``k`` always uses the deterministic
    :func:`~repro.harness.parallel.shard_seed`, so the returned curves
    are byte-identical to a serial run.
    """
    from repro.harness.parallel import map_shards, shard_seed

    specs = [
        (config, coverage, iterations,
         shard_seed(base_seed, repeat), repeat)
        for repeat in range(repeats)
    ]
    return map_shards(_coverage_repeat_star, specs, jobs)


@dataclass
class DetectionOutcome:
    """First-detection iterations for each vulnerability kind."""

    tool: str
    iterations_budget: int
    first_detection: dict[str, int] = field(default_factory=dict)

    def detected(self, kind: str) -> bool:
        return kind in self.first_detection


def _detection_kind_star(args) -> DetectionOutcome:
    """One single-kind detection campaign (picklable pool worker)."""
    config, kind, iterations, seed, monitor_dcache, use_special_seeds = args
    return run_detection_campaign(
        config, [kind], iterations, seed=seed,
        monitor_dcache=monitor_dcache, use_special_seeds=use_special_seeds,
    )


def run_detection_campaign(
    config: BoomConfig,
    kinds: list[str],
    iterations: int,
    seed: int = 0,
    monitor_dcache: bool = True,
    use_special_seeds: bool = True,
    jobs: int | None = None,
) -> DetectionOutcome:
    """Fuzz until every kind in ``kinds`` is found or the budget ends.

    With ``jobs >= 2`` (and more than one kind) each vulnerability kind
    gets its own worker process running the same seeded campaign, which
    stops as soon as *its* kind is found.  The fuzzing sequence is a
    pure function of the seed — the stop predicate only ends the loop —
    so each kind's first-detection iteration is identical to the serial
    all-kinds campaign's, while the slowest kind no longer serialises
    behind the others.
    """
    if jobs is not None and jobs >= 2 and len(kinds) >= 2:
        from repro.harness.parallel import map_shards

        specs = [
            (config, kind, iterations, seed, monitor_dcache,
             use_special_seeds)
            for kind in kinds
        ]
        outcomes = map_shards(_detection_kind_star, specs, jobs)
        merged = DetectionOutcome(
            tool="specure", iterations_budget=iterations
        )
        for outcome in outcomes:
            merged.first_detection.update(outcome.first_detection)
        return merged

    specure = Specure(
        config,
        seed=seed,
        coverage="lp",
        monitor_dcache=monitor_dcache,
        use_special_seeds=use_special_seeds,
    )
    remaining = set(kinds)

    def stop(findings) -> bool:
        for finding in findings:
            remaining.discard(finding.kind)
        return not remaining

    report = specure.campaign(iterations, stop_when=stop)
    outcome = DetectionOutcome(tool="specure", iterations_budget=iterations)
    for kind in kinds:
        iteration = report.first_detection_iteration(kind)
        if iteration is not None:
            outcome.first_detection[kind] = iteration + 1  # 1-based
    return outcome


def run_timed_campaign(
    config: BoomConfig,
    seconds: float,
    coverage: str = "lp",
    seed: int = 0,
    monitor_dcache: bool = True,
    shards: int = 1,
    jobs: int | None = None,
) -> CampaignReport:
    """Run a campaign for (approximately) a wall-clock budget.

    The paper's experiments are time-budgeted (24-hour runs); this is
    the scaled equivalent.  The deadline is checked between iterations,
    so the run overshoots by at most one evaluation.

    With ``shards >= 2`` the budget is fuzzed by that many independent
    hash-derived seed streams (see
    :func:`~repro.harness.parallel.shard_seed`) concurrently — ``jobs``
    worker processes — and the shard reports are merged into one
    :class:`CampaignReport` (see :mod:`repro.harness.parallel`).
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if shards > 1:
        from repro.harness.parallel import run_sharded_timed_campaign

        return run_sharded_timed_campaign(
            config, seconds, shards=shards, jobs=jobs, base_seed=seed,
            coverage=coverage, monitor_dcache=monitor_dcache,
        )
    specure = Specure(config, seed=seed, coverage=coverage,
                      monitor_dcache=monitor_dcache)
    deadline = time.monotonic() + seconds

    def out_of_time(_findings) -> bool:
        return time.monotonic() >= deadline

    # The iteration cap is a backstop; the deadline does the real work.
    return specure.campaign(10_000_000, stop_when=out_of_time)
