"""Campaign runners for the paper's experiments.

Wraps the Specure facade for the experiment shapes the evaluation
needs: *coverage campaigns* (Figure 2: covered-PDLC-versus-iteration
curves, repeated and averaged), *detection campaigns* (Table 2 /
detection-time: iterations until a given vulnerability class is first
reported), and *time-budgeted campaigns* (the paper's 24-hour runs,
scaled to seconds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.boom.config import BoomConfig
from repro.core.report import CampaignReport
from repro.core.specure import Specure, stop_on_kind


@dataclass
class CoverageCurve:
    """One campaign's covered-PDLC-per-iteration series."""

    label: str
    values: list[int] = field(default_factory=list)

    def as_points(self, stride: int = 1) -> list[tuple[float, float]]:
        return [
            (index + 1, value)
            for index, value in enumerate(self.values)
            if index % stride == 0 or index == len(self.values) - 1
        ]

    def final(self) -> int:
        return self.values[-1] if self.values else 0

    def iterations_to(self, target: int) -> int | None:
        for index, value in enumerate(self.values):
            if value >= target:
                return index + 1
        return None


def mean_curve(curves: list[CoverageCurve], label: str) -> CoverageCurve:
    """Pointwise mean of equal-length curves (the paper averages 3 runs)."""
    if not curves:
        raise ValueError("no curves to average")
    length = min(len(curve.values) for curve in curves)
    values = [
        sum(curve.values[index] for curve in curves) / len(curves)
        for index in range(length)
    ]
    return CoverageCurve(label=label, values=[int(v) for v in values])


def run_coverage_campaign(
    config: BoomConfig,
    coverage: str,
    iterations: int,
    repeats: int = 3,
    base_seed: int = 0,
) -> list[CoverageCurve]:
    """Run ``repeats`` fuzzing campaigns with the given coverage feedback.

    Both arms (LP and code coverage) report their progress in *covered
    PDLCs* — Figure 2's y-axis — regardless of which metric guided the
    fuzzer.  For the code-coverage arm this means the LP calculator runs
    as a passive observer on every iteration.
    """
    curves = []
    for repeat in range(repeats):
        specure = Specure(
            config, seed=base_seed + 1000 * repeat, coverage=coverage
        )
        campaign = specure.build_campaign()
        campaign.run(iterations)
        curves.append(CoverageCurve(
            label=f"{coverage}#{repeat}",
            values=list(campaign.online.lp_curve),
        ))
    return curves


@dataclass
class DetectionOutcome:
    """First-detection iterations for each vulnerability kind."""

    tool: str
    iterations_budget: int
    first_detection: dict[str, int] = field(default_factory=dict)

    def detected(self, kind: str) -> bool:
        return kind in self.first_detection


def run_detection_campaign(
    config: BoomConfig,
    kinds: list[str],
    iterations: int,
    seed: int = 0,
    monitor_dcache: bool = True,
    use_special_seeds: bool = True,
) -> DetectionOutcome:
    """Fuzz until every kind in ``kinds`` is found or the budget ends."""
    specure = Specure(
        config,
        seed=seed,
        coverage="lp",
        monitor_dcache=monitor_dcache,
        use_special_seeds=use_special_seeds,
    )
    remaining = set(kinds)

    def stop(findings) -> bool:
        for finding in findings:
            remaining.discard(finding.kind)
        return not remaining

    report = specure.campaign(iterations, stop_when=stop)
    outcome = DetectionOutcome(tool="specure", iterations_budget=iterations)
    for kind in kinds:
        iteration = report.first_detection_iteration(kind)
        if iteration is not None:
            outcome.first_detection[kind] = iteration + 1  # 1-based
    return outcome


def run_timed_campaign(
    config: BoomConfig,
    seconds: float,
    coverage: str = "lp",
    seed: int = 0,
    monitor_dcache: bool = True,
) -> CampaignReport:
    """Run a campaign for (approximately) a wall-clock budget.

    The paper's experiments are time-budgeted (24-hour runs); this is
    the scaled equivalent.  The deadline is checked between iterations,
    so the run overshoots by at most one evaluation.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    specure = Specure(config, seed=seed, coverage=coverage,
                      monitor_dcache=monitor_dcache)
    deadline = time.monotonic() + seconds

    def out_of_time(_findings) -> bool:
        return time.monotonic() >= deadline

    # The iteration cap is a backstop; the deadline does the real work.
    return specure.campaign(10_000_000, stop_when=out_of_time)
