"""Terminal rendering of the paper's Figure 2."""

from __future__ import annotations

from repro.harness.campaign import CoverageCurve
from repro.utils.text import ascii_plot


def render_coverage_figure(
    lp_curve: CoverageCurve,
    code_curve: CoverageCurve,
    total_pdlc: int,
    width: int = 70,
    height: int = 18,
) -> str:
    """Figure 2: covered PDLC vs fuzzer iteration, both coverage arms."""
    stride = max(1, len(lp_curve.values) // width)
    series = {
        "Leakage Path (LP)": lp_curve.as_points(stride),
        "Traditional Code Coverage": code_curve.as_points(stride),
    }
    return ascii_plot(
        series,
        width=width,
        height=height,
        title=f"Figure 2: covered PDLC vs fuzzer iteration (total {total_pdlc})",
        x_label="Fuzzer Iteration",
        y_label="Covered PDLC",
    )
