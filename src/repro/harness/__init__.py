"""Experiment harness: repeated campaigns, curves, and the registry
mapping every paper table/figure to its regenerating benchmark."""

from repro.harness.campaign import (
    CoverageCurve,
    mean_curve,
    run_coverage_campaign,
    run_detection_campaign,
    run_timed_campaign,
)
from repro.harness.experiments import EXPERIMENTS, ExperimentSpec
from repro.harness.plotting import render_coverage_figure

__all__ = [
    "CoverageCurve",
    "mean_curve",
    "run_coverage_campaign",
    "run_detection_campaign",
    "run_timed_campaign",
    "EXPERIMENTS",
    "ExperimentSpec",
    "render_coverage_figure",
]
