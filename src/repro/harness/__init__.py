"""Experiment harness: repeated campaigns, curves, and the registry
mapping every paper table/figure to its regenerating benchmark."""

from repro.harness.campaign import (
    CoverageCurve,
    align_curves,
    mean_curve,
    run_coverage_campaign,
    run_detection_campaign,
    run_timed_campaign,
)
from repro.harness.experiments import EXPERIMENTS, ExperimentSpec
from repro.harness.parallel import (
    merge_campaign_results,
    merge_reports,
    run_sharded_campaign,
    run_sharded_timed_campaign,
    shard_seed,
)
from repro.harness.plotting import render_coverage_figure

__all__ = [
    "CoverageCurve",
    "align_curves",
    "mean_curve",
    "run_coverage_campaign",
    "run_detection_campaign",
    "run_timed_campaign",
    "merge_campaign_results",
    "merge_reports",
    "run_sharded_campaign",
    "run_sharded_timed_campaign",
    "shard_seed",
    "EXPERIMENTS",
    "ExperimentSpec",
    "render_coverage_figure",
]
