"""Sharded parallel campaign execution and shard-artifact merging.

The paper's evaluation rests on repeated, long (24-hour) fuzzing
campaigns.  This module fans that work out across worker processes —
coverage-campaign *repeats* (Figure 2), detection-campaign *kinds*
(Table 2), and timed-campaign *shards* (the 24-hour runs) — and merges
the shard artifacts back into exactly the report types a serial run
produces.

Determinism contract
--------------------
Every shard derives its seed via :func:`shard_seed` — shard 0 runs at
``base_seed`` itself (so a one-shard campaign is indistinguishable from
a serial one) and shard ``k >= 1`` at ``stable_hash((base_seed, k))`` —
and each worker executes the *same* per-shard code path the serial loop
would.  A sharded run is therefore byte-identical to its serial
counterpart per shard; only wall-clock concurrency differs.
``jobs=None``/``jobs<=1`` runs the shards inline in-process, which is
also the fallback for environments where ``multiprocessing`` is
unavailable.

The hash derivation replaces the original ``base_seed + 1000 * k``
spacing, which collided across campaigns whose base seeds differ by a
multiple of 1000 (scenarios at seeds 0 and 1000 shared shard streams —
shard ``k+1`` of one replayed shard ``k`` of the other).  See the
compatibility note in ``docs/scenarios.md``.

Merge semantics
---------------
* :meth:`~repro.detection.mst.MisspeculationTable.merge` and
  :meth:`~repro.core.online.OnlineStats.merge` are associative and
  shard-order independent (canonical row order / additive counters).
* :func:`merge_campaign_results` concatenates the shards' iteration
  timelines: shard *k*'s findings and discovery log are re-stamped by
  the total iteration count of shards ``0..k-1`` (stable, deterministic
  stamping), and the merged coverage curve is the exact cumulative
  count of *distinct* items discovered by any shard along that
  concatenated timeline (computed from the discovery logs, not by
  summing per-shard counts, so overlapping discoveries are not double
  counted).
* :func:`merge_reports` combines full :class:`CampaignReport` shards
  using all of the above; the offline artifacts are taken from the
  first shard (they are a pure function of the configuration).
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass, replace

from repro.boom.config import BoomConfig
from repro.core.report import CampaignReport
from repro.core.specure import Specure
from repro.detection.vulnerability import LeakReport
from repro.fuzz.fuzzer import CampaignResult
from repro.utils.rng import stable_hash

#: Deprecated legacy seed spacing, kept only so existing call sites keep
#: importing; the hash derivation below never uses it and passing any
#: stride emits a :class:`DeprecationWarning`.
DEFAULT_SHARD_STRIDE = 1000

_SHARD_STRIDE_DEPRECATION = (
    "the 'shard_stride' parameter is deprecated and ignored: per-shard "
    "seeds are hash-derived (shard 0 = base seed, shard k >= 1 = "
    "stable_hash((base_seed, k))); stop passing it"
)


def shard_seed(base_seed: int, shard: int,
               shard_stride: int | None = None) -> int:
    """The deterministic seed of one shard.

    Shard 0 is the base seed itself — a one-shard campaign must be
    byte-identical to a serial run — and every later shard draws an
    independent stream from ``stable_hash((base_seed, shard))``, so two
    campaigns share a shard stream only if their base seeds collide
    outright (the old ``base_seed + stride * shard`` arithmetic aliased
    whenever base seeds differed by a multiple of the stride).

    ``shard_stride`` is deprecated and unused; passing any value warns.
    """
    if shard_stride is not None:
        warnings.warn(_SHARD_STRIDE_DEPRECATION, DeprecationWarning,
                      stacklevel=2)
    if shard == 0:
        return base_seed
    return stable_hash((base_seed, shard))


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """One shard's full, picklable work description."""

    shard: int
    config: BoomConfig
    seed: int
    coverage: str = "lp"
    iterations: int = 0
    seconds: float | None = None
    monitor_dcache: bool = False
    use_special_seeds: bool = True
    random_seed_count: int = 4
    splice_probability: float = 0.15
    mutation_rounds: int = 3
    detector: str = "ift"
    contract: str = "ct-seq"
    inputs_per_class: int = 3
    max_spec_window: int = 16
    stop_kind: str | None = None


def _run_shard(spec: ShardSpec) -> CampaignReport:
    """Execute one shard (runs inside a worker process)."""
    import time

    specure = Specure(
        spec.config,
        seed=spec.seed,
        coverage=spec.coverage,
        monitor_dcache=spec.monitor_dcache,
        use_special_seeds=spec.use_special_seeds,
        random_seed_count=spec.random_seed_count,
        splice_probability=spec.splice_probability,
        mutation_rounds=spec.mutation_rounds,
        detector=spec.detector,
        contract=spec.contract,
        inputs_per_class=spec.inputs_per_class,
        max_spec_window=spec.max_spec_window,
    )
    deadline = (
        None if spec.seconds is None else time.monotonic() + spec.seconds
    )

    def stop(findings) -> bool:
        if deadline is not None and time.monotonic() >= deadline:
            return True
        if spec.stop_kind is not None:
            return any(f.kind == spec.stop_kind for f in findings)
        return False

    iterations = spec.iterations if spec.seconds is None else 10_000_000
    return specure.campaign(iterations, stop_when=stop)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


def imap_shards(worker, specs, jobs: int | None):
    """Yield ``(spec, worker(spec))`` pairs in spec order, incrementally.

    The streaming counterpart of :func:`map_shards`, for store-aware
    callers (:mod:`repro.scenarios.runner`) that persist each shard's
    artifacts as soon as it finishes instead of waiting for the whole
    batch: with ``jobs >= 2`` results stream back via ``Pool.imap`` —
    still in spec order, so downstream merges stay deterministic — and a
    consumer that stops early (interrupt) has every yielded shard
    already persisted.  ``worker`` and every spec must be picklable.
    """
    jobs = 1 if jobs is None else min(jobs, len(specs))
    if jobs <= 1 or len(specs) <= 1:
        for spec in specs:
            yield spec, worker(spec)
        return
    with _pool_context().Pool(processes=jobs) as pool:
        yield from zip(specs, pool.imap(worker, specs))


def map_shards(worker, specs, jobs: int | None):
    """Run ``worker`` over ``specs``, optionally across processes.

    Results always come back in spec order, so downstream merges are
    deterministic regardless of which worker finishes first.  ``worker``
    and every spec must be picklable (module-level function, plain-data
    spec).
    """
    return [result for _, result in imap_shards(worker, specs, jobs)]


# ----------------------------------------------------------------------
# Merge operations
# ----------------------------------------------------------------------

def merge_campaign_results(results: list[CampaignResult]) -> CampaignResult:
    """Merge shard fuzzing results onto one concatenated timeline.

    Shard ``k``'s iterations are re-stamped with the offset
    ``sum(iterations of shards < k)``; the merged coverage curve counts
    distinct items discovered by *any* shard up to each global
    iteration.  The merge is associative: merging pre-merged prefixes
    yields the same result as merging all shards at once.
    """
    merged = CampaignResult(iterations=0)
    offset = 0
    for result in results:
        for finding in result.findings:
            merged.findings.append(
                replace(finding, iteration=finding.iteration + offset)
            )
        for iteration, item in result.discovery_log:
            merged.discovery_log.append((iteration + offset, item))
        offset += result.iterations
        merged.corpus_size += result.corpus_size
        merged.executed_programs += result.executed_programs
    merged.iterations = offset

    seen: set = set()
    curve = []
    log = sorted(merged.discovery_log, key=lambda entry: entry[0])
    position = 0
    count = 0
    for iteration in range(offset):
        while position < len(log) and log[position][0] <= iteration:
            item = log[position][1]
            if item not in seen:
                seen.add(item)
                count += 1
            position += 1
        curve.append(count)
    merged.coverage_curve = curve
    return merged


def merge_reports(reports: list[CampaignReport]) -> CampaignReport:
    """Merge shard :class:`CampaignReport` objects into one.

    The result has the same type and shape as a serial campaign's
    report: merged stats (additive), a canonically ordered MST, leak
    reports concatenated in shard order, and a fuzz result on the
    concatenated iteration timeline.  A single report merges to itself
    (identity), so a one-shard run is indistinguishable from serial —
    including the MST's discovery order, which a multi-shard merge
    replaces with the canonical (start, end, tag) order.
    """
    if not reports:
        raise ValueError("no shard reports to merge")
    if len(reports) == 1:
        return reports[0]
    stats = reports[0].stats.merge(*(r.stats for r in reports[1:]))
    mst = reports[0].mst.merge(*(r.mst for r in reports[1:]))
    leak_reports: list[LeakReport] = []
    for report in reports:
        leak_reports.extend(report.reports)
    fuzz = merge_campaign_results([report.fuzz for report in reports])
    return CampaignReport(
        offline=reports[0].offline,
        fuzz=fuzz,
        stats=stats,
        mst=mst,
        reports=leak_reports,
        detectors=reports[0].detectors,
    )


# ----------------------------------------------------------------------
# Sharded runners
# ----------------------------------------------------------------------

def run_sharded_campaign(
    config: BoomConfig,
    iterations_per_shard: int,
    shards: int = 2,
    jobs: int | None = None,
    base_seed: int = 0,
    shard_stride: int | None = None,
    coverage: str = "lp",
    monitor_dcache: bool = False,
    use_special_seeds: bool = True,
    random_seed_count: int = 4,
    splice_probability: float = 0.15,
    mutation_rounds: int = 3,
    detector: str = "ift",
    contract: str = "ct-seq",
    inputs_per_class: int = 3,
    max_spec_window: int = 16,
    stop_kind: str | None = None,
) -> CampaignReport:
    """Run ``shards`` independent campaigns and merge their reports.

    Each shard is a full serial campaign at its :func:`shard_seed`;
    ``jobs`` bounds the number of concurrent worker processes
    (``None``/1 = inline).  ``shard_stride`` is deprecated and ignored
    (passing it warns).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shard_stride is not None:
        # Warn once here, attributed to the caller, rather than once
        # per shard from inside the seed derivation.
        warnings.warn(_SHARD_STRIDE_DEPRECATION, DeprecationWarning,
                      stacklevel=2)
    specs = [
        ShardSpec(
            shard=shard,
            config=config,
            seed=shard_seed(base_seed, shard),
            coverage=coverage,
            iterations=iterations_per_shard,
            monitor_dcache=monitor_dcache,
            use_special_seeds=use_special_seeds,
            random_seed_count=random_seed_count,
            splice_probability=splice_probability,
            mutation_rounds=mutation_rounds,
            detector=detector,
            contract=contract,
            inputs_per_class=inputs_per_class,
            max_spec_window=max_spec_window,
            stop_kind=stop_kind,
        )
        for shard in range(shards)
    ]
    return merge_reports(map_shards(_run_shard, specs, jobs))


def run_sharded_timed_campaign(
    config: BoomConfig,
    seconds: float,
    shards: int = 2,
    jobs: int | None = None,
    base_seed: int = 0,
    shard_stride: int | None = None,
    coverage: str = "lp",
    monitor_dcache: bool = True,
) -> CampaignReport:
    """Sharded version of the paper's time-budgeted (24-hour) runs.

    Every shard fuzzes a distinct seed stream for the *same* wall-clock
    budget; with ``jobs >= shards`` the whole sharded campaign takes the
    budget of one.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if shard_stride is not None:
        warnings.warn(_SHARD_STRIDE_DEPRECATION, DeprecationWarning,
                      stacklevel=2)
    specs = [
        ShardSpec(
            shard=shard,
            config=config,
            seed=shard_seed(base_seed, shard),
            coverage=coverage,
            seconds=seconds,
            monitor_dcache=monitor_dcache,
        )
        for shard in range(shards)
    ]
    return merge_reports(map_shards(_run_shard, specs, jobs))
