"""Sharded parallel campaign execution and shard-artifact merging.

The paper's evaluation rests on repeated, long (24-hour) fuzzing
campaigns.  This module fans that work out across worker processes —
coverage-campaign *repeats* (Figure 2), detection-campaign *kinds*
(Table 2), and timed-campaign *shards* (the 24-hour runs) — and merges
the shard artifacts back into exactly the report types a serial run
produces.

Determinism contract
--------------------
Every shard derives its seed via :func:`shard_seed` — shard 0 runs at
``base_seed`` itself (so a one-shard campaign is indistinguishable from
a serial one) and shard ``k >= 1`` at ``stable_hash((base_seed, k))`` —
and each worker executes the *same* per-shard code path the serial loop
would.  A sharded run is therefore byte-identical to its serial
counterpart per shard; only wall-clock concurrency differs.
``jobs=None``/``jobs<=1`` runs the shards inline in-process, which is
also the fallback for environments where ``multiprocessing`` is
unavailable.

The hash derivation replaces the original ``base_seed + 1000 * k``
spacing, which collided across campaigns whose base seeds differ by a
multiple of 1000 (scenarios at seeds 0 and 1000 shared shard streams —
shard ``k+1`` of one replayed shard ``k`` of the other).  The old
``shard_stride`` parameter is gone: passing it raises (a ``TypeError``
here, a :class:`~repro.scenarios.spec.ScenarioError` from scenario
files).  See the compatibility note in ``docs/scenarios.md``.

Executor architecture
---------------------
Work is dispatched to a **persistent work-stealing pool**
(:func:`imap_shard_units`): worker processes live for the process
lifetime (one fork per jobs count, not one per campaign) and keep
**shared read-only statics** per ``(design, config)`` —
the elaborated netlist or RTL design inside a reusable PUT backend
(:func:`repro.puts.base.build_put`), its decode caches (seed images
decode once per process), and the
offline artifacts (:func:`shared_statics`) — so a shard campaign costs
exactly its fuzzing loop, with no per-shard netlist elaboration or
offline phase.  Shards become fine-grained deterministic work units
(unit id = spec position) dispatched via ``imap_unordered`` with chunk
size 1: a free worker steals the next pending unit immediately, and
results are re-assembled by unit id (:func:`map_shards`), keeping merged
reports byte-identical to serial runs whatever the completion order.
Worker exceptions come back as values, are re-raised as
:class:`ShardExecutionError` naming the failing shard, and terminate the
pool promptly instead of joining stuck siblings; see ``docs/performance.md``.

Merge semantics
---------------
* :meth:`~repro.detection.mst.MisspeculationTable.merge` and
  :meth:`~repro.core.online.OnlineStats.merge` are associative and
  shard-order independent (canonical row order / additive counters).
* :func:`merge_campaign_results` concatenates the shards' iteration
  timelines: shard *k*'s findings and discovery log are re-stamped by
  the total iteration count of shards ``0..k-1`` (stable, deterministic
  stamping), and the merged coverage curve is the exact cumulative
  count of *distinct* items discovered by any shard along that
  concatenated timeline (computed from the discovery logs, not by
  summing per-shard counts, so overlapping discoveries are not double
  counted).
* :func:`merge_reports` combines full :class:`CampaignReport` shards
  using all of the above; the offline artifacts are taken from the
  first shard (they are a pure function of the configuration).
"""

from __future__ import annotations

import atexit
import multiprocessing
import signal
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from multiprocessing import connection
from pathlib import Path

from repro.core.offline import OfflineArtifacts, run_offline
from repro.core.report import CampaignReport
from repro.core.specure import Specure
from repro.detection.vulnerability import LeakReport
from repro.fuzz.fuzzer import CampaignResult
from repro.puts.base import Put, build_put, statics_key
from repro.utils.rng import stable_hash


def shard_seed(base_seed: int, shard: int) -> int:
    """The deterministic seed of one shard.

    Shard 0 is the base seed itself — a one-shard campaign must be
    byte-identical to a serial run — and every later shard draws an
    independent stream from ``stable_hash((base_seed, shard))``, so two
    campaigns share a shard stream only if their base seeds collide
    outright (the old ``base_seed + stride * shard`` arithmetic aliased
    whenever base seeds differed by a multiple of the stride; its
    ``shard_stride`` parameter has been removed).
    """
    if shard == 0:
        return base_seed
    return stable_hash((base_seed, shard))


# ----------------------------------------------------------------------
# Worker-process plumbing: persistent pool + per-process shared statics
# ----------------------------------------------------------------------

class ShardExecutionError(RuntimeError):
    """A work unit's worker raised inside the pool.

    Carries the failing shard id (``shard``) and the worker-side
    traceback text (``worker_traceback``); the pool the unit ran in is
    torn down promptly before this propagates, so sibling units never
    hold the caller hostage.
    """

    def __init__(self, shard: int, worker_traceback: str):
        super().__init__(
            f"shard {shard} failed in a worker process:\n{worker_traceback}"
        )
        self.shard = shard
        self.worker_traceback = worker_traceback


#: The process-lifetime worker pool (one per jobs count, lazily built).
_POOL: multiprocessing.pool.Pool | None = None
_POOL_JOBS = 0
_POOL_ATEXIT_REGISTERED = False


def _get_pool(jobs: int):
    """The persistent worker pool, (re)built only when ``jobs`` changes.

    Workers are initialized once per process lifetime and keep their
    per-process statics (:func:`shared_statics`) across campaigns —
    repeated `imap_shards` calls reuse warm processes instead of paying
    a fork + netlist elaboration + offline phase per campaign.
    """
    global _POOL, _POOL_JOBS, _POOL_ATEXIT_REGISTERED
    if _POOL is not None and _POOL_JOBS != jobs:
        shutdown_pool()
    if _POOL is None:
        _POOL = _pool_context().Pool(processes=jobs)
        _POOL_JOBS = jobs
        if not _POOL_ATEXIT_REGISTERED:
            atexit.register(shutdown_pool)
            _POOL_ATEXIT_REGISTERED = True
    return _POOL


def shutdown_pool() -> None:
    """Terminate and discard the persistent pool (idempotent).

    Called automatically at interpreter exit, when ``jobs`` changes, and
    on worker failure or interrupt — `terminate` rather than `close` so
    a stuck sibling unit cannot block the teardown.  Also tears down the
    resilient worker fleet so one call quiesces every worker process.
    """
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_JOBS = 0
    shutdown_fleet()


#: Per-process shared read-only statics: one (core, offline artifacts)
#: pair per PUT configuration, keyed on ``(design, repr(config))`` so
#: two designs whose configs repr alike can never alias.  The core
#: carries the elaborated netlist/design, the reusable simulation
#: engine, and any decode caches (seed images decode once per process,
#: not once per shard); the offline artifacts are a pure function of
#: the design.  Bounded LRU so a long-lived worker serving many designs
#: cannot grow unboundedly.
_WORKER_STATICS: OrderedDict[tuple[str, str],
                             tuple[Put, OfflineArtifacts]] = OrderedDict()
_WORKER_STATICS_LIMIT = 4


def shared_statics(config) -> tuple[Put, OfflineArtifacts]:
    """This process's shared (core, offline artifacts) for ``config``.

    Safe to share across work units because both are exact under reuse:
    the engine resets byte-identically between programs (pinned by
    ``tests/test_engine_reuse.py``) and the offline artifacts depend on
    the design alone.
    """
    key = statics_key(config)
    hit = _WORKER_STATICS.get(key)
    if hit is not None:
        _WORKER_STATICS.move_to_end(key)
        return hit
    core = build_put(config)
    value = (core, run_offline(core.offline_model()))
    _WORKER_STATICS[key] = value
    if len(_WORKER_STATICS) > _WORKER_STATICS_LIMIT:
        _WORKER_STATICS.popitem(last=False)
    return value


def shared_specure(config, **knobs) -> Specure:
    """A :class:`Specure` wired onto this process's shared statics."""
    core, offline = shared_statics(config)
    return Specure(core=core, offline=offline, **knobs)


def _run_unit(payload):
    """Work-unit envelope executed in the pool (or inline).

    Returns ``(unit_id, ok, result_or_traceback)`` — errors travel back
    as values so the dispatcher can name the failing unit and tear the
    pool down promptly instead of letting the context manager join
    still-running siblings first.
    """
    unit_id, worker, item = payload
    try:
        return unit_id, True, worker(item)
    except Exception:
        return unit_id, False, traceback.format_exc()


def _shard_of(item, unit_id: int) -> int:
    """Best-effort shard id of a work item (for error reporting)."""
    shard = getattr(item, "shard", None)
    if isinstance(shard, int):
        return shard
    if isinstance(item, tuple) and len(item) >= 2 and isinstance(item[1], int):
        return item[1]  # the scenario runner's (spec, shard, seed) tasks
    return unit_id


@dataclass(frozen=True)
class ShardSpec:
    """One shard's full, picklable work description."""

    shard: int
    config: object  # BoomConfig | RtlPutConfig (any Put configuration)
    seed: int
    coverage: str = "lp"
    iterations: int = 0
    seconds: float | None = None
    monitor_dcache: bool = False
    use_special_seeds: bool = True
    random_seed_count: int = 4
    splice_probability: float = 0.15
    mutation_rounds: int = 3
    detector: str = "ift"
    contract: str = "ct-seq"
    inputs_per_class: int = 3
    max_spec_window: int = 16
    instruction_categories: tuple[str, ...] = ()
    static_prune: bool = False
    stop_kind: str | None = None


def _run_shard(spec: ShardSpec) -> CampaignReport:
    """Execute one shard (runs inside a worker process)."""
    import time

    specure = shared_specure(
        spec.config,
        seed=spec.seed,
        coverage=spec.coverage,
        monitor_dcache=spec.monitor_dcache,
        use_special_seeds=spec.use_special_seeds,
        random_seed_count=spec.random_seed_count,
        splice_probability=spec.splice_probability,
        mutation_rounds=spec.mutation_rounds,
        detector=spec.detector,
        contract=spec.contract,
        inputs_per_class=spec.inputs_per_class,
        max_spec_window=spec.max_spec_window,
        instruction_categories=spec.instruction_categories,
        static_prune=spec.static_prune,
    )
    deadline = (
        None if spec.seconds is None else time.monotonic() + spec.seconds
    )

    def stop(findings) -> bool:
        if deadline is not None and time.monotonic() >= deadline:
            return True
        if spec.stop_kind is not None:
            return any(f.kind == spec.stop_kind for f in findings)
        return False

    iterations = spec.iterations if spec.seconds is None else 10_000_000
    return specure.campaign(iterations, stop_when=stop)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


# ----------------------------------------------------------------------
# Resilient execution: retry policy, watchdog fleet, quarantine markers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient dispatcher treats failing or hung work units.

    ``max_retries`` bounds *re*-tries: a unit runs at most
    ``1 + max_retries`` times, always with the same seed (a retry that
    succeeds is byte-identical to a first-try success — the determinism
    contract makes retries safe).  ``unit_timeout_s > 0`` arms the
    watchdog: a worker whose unit has shown no progress — no completed
    recv, and no fresh heartbeat line in ``progress_dir`` — for that
    long is SIGKILLed and its unit retried.  ``on_exhaust`` picks the
    endgame: ``"fail"`` raises :class:`ShardExecutionError` (the legacy
    all-stop), ``"degrade"`` yields a :class:`UnitFailure` marker so the
    campaign completes without the quarantined shard.  ``isolate``
    forces worker processes even at ``jobs=1`` (required for the
    watchdog and for crash containment of whole-process faults).
    """

    max_retries: int = 2
    unit_timeout_s: float = 0.0
    on_exhaust: str = "fail"
    progress_dir: str | Path | None = None
    isolate: bool = False

    def __post_init__(self):
        if self.on_exhaust not in ("fail", "degrade"):
            raise ValueError(
                f"on_exhaust must be 'fail' or 'degrade', "
                f"not {self.on_exhaust!r}")


@dataclass(frozen=True)
class UnitFailure:
    """A work unit that exhausted its retries (yielded in degrade mode)."""

    shard: int
    attempts: int
    kind: str   # "exception" | "worker-died" | "timeout"
    error: str  # traceback text or one-line description

    def summary(self) -> str:
        """One line for reports: the traceback's final line, or the
        failure description itself when it is already one line."""
        for line in reversed(self.error.strip().splitlines()):
            if line.strip():
                return line.strip()
        return self.kind


def _stamp_attempt(item, attempt: int):
    """Re-stamp a work item with its attempt number when it supports it
    (the scenario runner's tasks do — telemetry records the attempt)."""
    with_attempt = getattr(item, "with_attempt", None)
    if attempt > 1 and callable(with_attempt):
        return with_attempt(attempt)
    return item


def _fleet_worker_main(conn) -> None:
    """A fleet worker: receive ``(unit_id, worker, item)``, send back
    ``(unit_id, ok, result_or_traceback)`` until the pipe closes.

    SIGINT is ignored — on a keyboard interrupt the parent owns the
    shutdown (exactly like ``multiprocessing.Pool`` initializers do),
    so workers never die mid-write from the tty's signal fan-out.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            return
        if payload is None:
            return
        unit_id, worker, item = payload
        try:
            response = (unit_id, True, worker(item))
        except Exception:
            response = (unit_id, False, traceback.format_exc())
        try:
            conn.send(response)
        except Exception:
            return


class _FleetWorker:
    """Parent-side handle of one fleet worker process."""

    __slots__ = ("process", "conn", "unit_id", "assigned_at")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.unit_id: int | None = None
        self.assigned_at = 0.0


class _WorkerFleet:
    """A crash-survivable pool: one duplex pipe per worker, no shared
    queues.

    ``multiprocessing.Pool`` multiplexes every worker over shared
    result queues, so a SIGKILLed worker can take the queue's feeder
    state (or a held lock) down with it — the documented reason Pool
    deadlocks on lost workers.  The fleet gives each worker a private
    :func:`Pipe`; losing a worker breaks exactly one pipe, which the
    dispatcher observes via the process sentinel and repairs by
    respawning that single worker.
    """

    def __init__(self, jobs: int):
        self.jobs = jobs
        self.ctx = _pool_context()
        self.workers = [self._spawn() for _ in range(jobs)]

    def _spawn(self) -> _FleetWorker:
        parent_conn, child_conn = self.ctx.Pipe()
        process = self.ctx.Process(
            target=_fleet_worker_main, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        return _FleetWorker(process, parent_conn)

    def respawn(self, worker: _FleetWorker) -> None:
        """Replace one (dead or hung) worker, leaving the rest running."""
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        worker.conn.close()
        fresh = self._spawn()
        worker.process = fresh.process
        worker.conn = fresh.conn
        worker.unit_id = None
        worker.assigned_at = 0.0

    def shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in self.workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.conn.close()
        self.workers = []


#: The process-lifetime fleet (one per jobs count, lazily built).
_FLEET: _WorkerFleet | None = None
_FLEET_ATEXIT_REGISTERED = False


def _get_fleet(jobs: int) -> _WorkerFleet:
    global _FLEET, _FLEET_ATEXIT_REGISTERED
    if _FLEET is not None and _FLEET.jobs != jobs:
        shutdown_fleet()
    if _FLEET is None:
        _FLEET = _WorkerFleet(jobs)
        if not _FLEET_ATEXIT_REGISTERED:
            atexit.register(shutdown_fleet)
            _FLEET_ATEXIT_REGISTERED = True
    return _FLEET


def shutdown_fleet() -> None:
    """Stop and discard the resilient worker fleet (idempotent)."""
    global _FLEET
    if _FLEET is not None:
        _FLEET.shutdown()
        _FLEET = None


#: Dispatcher poll interval: bounds watchdog latency, not throughput
#: (results wake the dispatcher immediately via ``connection.wait``).
_FLEET_TICK_S = 0.1


def _progress_stamp(policy: RetryPolicy, item, unit_id: int,
                    assigned_at: float) -> float:
    """Wall-clock time of the unit's last observed progress.

    The later of when the unit was assigned and the last modification
    of its telemetry heartbeat log (PR 9's ``shard-NNNN.jsonl``, beats
    flushed per line) — so a long unit that is *beating* is never shot,
    while a hung one times out even mid-unit.  Beats older than the
    assignment are debris of a previous attempt and do not count.
    """
    if policy.progress_dir is None:
        return assigned_at
    from repro.telemetry.heartbeat import shard_filename

    path = Path(policy.progress_dir) / shard_filename(
        _shard_of(item, unit_id))
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return assigned_at
    return max(assigned_at, mtime) if mtime > assigned_at else assigned_at


def _imap_resilient(worker, specs, jobs: int, policy: RetryPolicy):
    """The fleet dispatcher: watchdog + retry + quarantine markers.

    Yields ``(unit_id, spec, result)`` in completion order, where
    ``result`` is a :class:`UnitFailure` for units that exhausted their
    retries under ``on_exhaust="degrade"``.  Raises
    :class:`ShardExecutionError` (after tearing the fleet down) under
    ``on_exhaust="fail"`` — the legacy executor's all-stop contract.
    """
    pending = deque(range(len(specs)))
    attempts = {unit_id: 0 for unit_id in range(len(specs))}

    def exhaust(unit_id: int, kind: str, error: str) -> UnitFailure | None:
        """Retry the unit, or produce its quarantine marker / all-stop."""
        if attempts[unit_id] <= policy.max_retries:
            pending.appendleft(unit_id)
            return None
        if policy.on_exhaust == "degrade":
            return UnitFailure(
                shard=_shard_of(specs[unit_id], unit_id),
                attempts=attempts[unit_id], kind=kind, error=error)
        raise ShardExecutionError(_shard_of(specs[unit_id], unit_id), error)

    try:
        fleet = _get_fleet(jobs)
        done = 0
        while done < len(specs):
            # Hand pending units to idle workers (respawning any that
            # died while idle — can only happen via external kills).
            for member in fleet.workers:
                if not pending or member.unit_id is not None:
                    continue
                if not member.process.is_alive():
                    fleet.respawn(member)
                unit_id = pending.popleft()
                attempts[unit_id] += 1
                item = _stamp_attempt(specs[unit_id], attempts[unit_id])
                try:
                    member.conn.send((unit_id, worker, item))
                except (OSError, ValueError):
                    # Died between the liveness check and the send:
                    # repair and retry without charging an attempt.
                    fleet.respawn(member)
                    attempts[unit_id] -= 1
                    pending.appendleft(unit_id)
                    continue
                member.unit_id = unit_id
                member.assigned_at = time.time()

            busy = [m for m in fleet.workers if m.unit_id is not None]
            if not busy:
                continue
            handles = [m.conn for m in busy] + \
                [m.process.sentinel for m in busy]
            ready = connection.wait(handles, timeout=_FLEET_TICK_S)

            for member in busy:
                unit_id = member.unit_id
                if unit_id is None:
                    continue
                has_result = member.conn in ready
                died = member.process.sentinel in ready
                if died and not has_result:
                    # A killed worker can still have flushed its result
                    # into the pipe buffer — drain before declaring it.
                    has_result = member.conn.poll(0)
                if has_result:
                    try:
                        _, ok, payload = member.conn.recv()
                    except (EOFError, OSError):
                        died, has_result = True, False
                    else:
                        member.unit_id = None
                        if ok:
                            done += 1
                            yield unit_id, specs[unit_id], payload
                        else:
                            failure = exhaust(unit_id, "exception", payload)
                            if failure is not None:
                                done += 1
                                yield unit_id, specs[unit_id], failure
                        continue
                if died:
                    member.unit_id = None
                    fleet.respawn(member)
                    failure = exhaust(
                        unit_id, "worker-died",
                        f"shard worker (unit {unit_id}) died without a "
                        f"result — killed or crashed hard")
                    if failure is not None:
                        done += 1
                        yield unit_id, specs[unit_id], failure

            if policy.unit_timeout_s > 0:
                now = time.time()
                for member in fleet.workers:
                    unit_id = member.unit_id
                    if unit_id is None:
                        continue
                    stamp = _progress_stamp(
                        policy, specs[unit_id], unit_id, member.assigned_at)
                    if now - stamp <= policy.unit_timeout_s:
                        continue
                    member.unit_id = None
                    fleet.respawn(member)
                    failure = exhaust(
                        unit_id, "timeout",
                        f"no progress for {now - stamp:.1f}s "
                        f"(unit_timeout_s={policy.unit_timeout_s:g}) — "
                        f"worker killed by the watchdog")
                    if failure is not None:
                        done += 1
                        yield unit_id, specs[unit_id], failure
    except BaseException:
        # ShardExecutionError, KeyboardInterrupt, or an abandoned
        # generator: quiesce every worker; the next call rebuilds.
        shutdown_fleet()
        raise


def _imap_inline_resilient(worker, specs, policy: RetryPolicy):
    """In-process retry/quarantine for ``jobs<=1`` without isolation.

    Covers the exception failure mode only — whole-process faults
    (kills, hangs) need the fleet, which the caller selects via
    ``policy.isolate``.  Exhaustion raises the same
    :class:`ShardExecutionError` the fleet does, so callers observe one
    failure contract whatever the jobs count.
    """
    for unit_id, spec in enumerate(specs):
        for attempt in range(1, policy.max_retries + 2):
            try:
                result = worker(_stamp_attempt(spec, attempt))
            except Exception as error:
                if attempt <= policy.max_retries:
                    continue
                if policy.on_exhaust == "degrade":
                    yield unit_id, spec, UnitFailure(
                        shard=_shard_of(spec, unit_id), attempts=attempt,
                        kind="exception", error=traceback.format_exc())
                    break
                raise ShardExecutionError(
                    _shard_of(spec, unit_id),
                    traceback.format_exc()) from error
            yield unit_id, spec, result
            break


def imap_shard_units(worker, specs, jobs: int | None,
                     policy: RetryPolicy | None = None):
    """Yield ``(unit_id, spec, worker(spec))`` as units *complete*.

    The work-stealing dispatcher: every spec becomes one deterministic
    work unit ``(unit_id, worker, spec)``, dispatched to the persistent
    pool via ``imap_unordered`` with chunk size 1 — a free worker steals
    the next pending unit the moment it finishes its previous one, so a
    slow unit never idles the other processes the way one coarse task
    per worker would.  Unit ids let callers re-assemble results into
    spec order (:func:`map_shards`), which keeps merged reports
    byte-identical to serial runs regardless of completion order.

    Failure semantics: a worker exception travels back as a value,
    is re-raised here as :class:`ShardExecutionError` naming the failing
    shard, and the persistent pool is terminated *first* — promptly,
    without joining still-running siblings.  Interrupts and abandoned
    generators tear the pool down the same way.  ``jobs=None``/``<=1``
    runs the units inline, where exceptions propagate raw (with their
    original tracebacks).  ``worker`` and every spec must be picklable.

    A :class:`RetryPolicy` switches to the resilient dispatcher: the
    watchdog fleet (:class:`_WorkerFleet`) when running multi-process
    or when ``policy.isolate`` demands worker processes, else in-process
    retries.  Under a policy, yielded results may be
    :class:`UnitFailure` markers (``on_exhaust="degrade"``).
    """
    if policy is not None:
        jobs = 1 if jobs is None else max(1, min(jobs, len(specs)))
        if jobs > 1 or policy.isolate:
            yield from _imap_resilient(worker, specs, jobs, policy)
        else:
            yield from _imap_inline_resilient(worker, specs, policy)
        return
    jobs = 1 if jobs is None else min(jobs, len(specs))
    if jobs <= 1 or len(specs) <= 1:
        for unit_id, spec in enumerate(specs):
            yield unit_id, spec, worker(spec)
        return
    payloads = [(unit_id, worker, spec) for unit_id, spec in enumerate(specs)]
    pool = _get_pool(jobs)
    try:
        for unit_id, ok, result in pool.imap_unordered(_run_unit, payloads):
            if not ok:
                raise ShardExecutionError(
                    _shard_of(specs[unit_id], unit_id), result
                )
            yield unit_id, specs[unit_id], result
    except BaseException:
        # Worker failure, KeyboardInterrupt, or an abandoned generator
        # (GeneratorExit): kill outstanding units now; the next call
        # builds a fresh pool.
        shutdown_pool()
        raise


def imap_shards(worker, specs, jobs: int | None,
                policy: RetryPolicy | None = None):
    """Yield ``(spec, worker(spec))`` pairs as they complete.

    The streaming face of :func:`imap_shard_units` for store-aware
    callers (:mod:`repro.scenarios.runner`) that persist each shard's
    artifacts as soon as it lands: results arrive in *completion* order
    (each paired with its own spec, so identity is never ambiguous), and
    a consumer that stops early has every yielded shard already
    persisted.  Callers that need spec order use :func:`map_shards`.
    With a :class:`RetryPolicy` in degrade mode, a yielded result may be
    a :class:`UnitFailure` marker instead of the worker's return value.
    """
    for _unit_id, spec, result in imap_shard_units(worker, specs, jobs,
                                                   policy):
        yield spec, result


def map_shards(worker, specs, jobs: int | None):
    """Run ``worker`` over ``specs``, optionally across processes.

    Results are re-assembled by unit id into spec order, so downstream
    merges are deterministic regardless of which worker finishes first.
    ``worker`` and every spec must be picklable (module-level function,
    plain-data spec).
    """
    results = [None] * len(specs)
    for unit_id, _spec, result in imap_shard_units(worker, specs, jobs):
        results[unit_id] = result
    return results


# ----------------------------------------------------------------------
# Merge operations
# ----------------------------------------------------------------------

def merge_campaign_results(results: list[CampaignResult]) -> CampaignResult:
    """Merge shard fuzzing results onto one concatenated timeline.

    Shard ``k``'s iterations are re-stamped with the offset
    ``sum(iterations of shards < k)``; the merged coverage curve counts
    distinct items discovered by *any* shard up to each global
    iteration.  The merge is associative: merging pre-merged prefixes
    yields the same result as merging all shards at once.
    """
    merged = CampaignResult(iterations=0)
    offset = 0
    for result in results:
        for finding in result.findings:
            merged.findings.append(
                replace(finding, iteration=finding.iteration + offset)
            )
        for iteration, item in result.discovery_log:
            merged.discovery_log.append((iteration + offset, item))
        offset += result.iterations
        merged.corpus_size += result.corpus_size
        merged.executed_programs += result.executed_programs
    merged.iterations = offset

    seen: set = set()
    curve = []
    log = sorted(merged.discovery_log, key=lambda entry: entry[0])
    position = 0
    count = 0
    for iteration in range(offset):
        while position < len(log) and log[position][0] <= iteration:
            item = log[position][1]
            if item not in seen:
                seen.add(item)
                count += 1
            position += 1
        curve.append(count)
    merged.coverage_curve = curve
    return merged


def merge_reports(reports: list[CampaignReport]) -> CampaignReport:
    """Merge shard :class:`CampaignReport` objects into one.

    The result has the same type and shape as a serial campaign's
    report: merged stats (additive), a canonically ordered MST, leak
    reports concatenated in shard order, and a fuzz result on the
    concatenated iteration timeline.  A single report merges to itself
    (identity), so a one-shard run is indistinguishable from serial —
    including the MST's discovery order, which a multi-shard merge
    replaces with the canonical (start, end, tag) order.
    """
    if not reports:
        raise ValueError("no shard reports to merge")
    if len(reports) == 1:
        return reports[0]
    stats = reports[0].stats.merge(*(r.stats for r in reports[1:]))
    mst = reports[0].mst.merge(*(r.mst for r in reports[1:]))
    leak_reports: list[LeakReport] = []
    for report in reports:
        leak_reports.extend(report.reports)
    fuzz = merge_campaign_results([report.fuzz for report in reports])
    return CampaignReport(
        offline=reports[0].offline,
        fuzz=fuzz,
        stats=stats,
        mst=mst,
        reports=leak_reports,
        detectors=reports[0].detectors,
        static_prune=reports[0].static_prune,
    )


# ----------------------------------------------------------------------
# Sharded runners
# ----------------------------------------------------------------------

def run_sharded_campaign(
    config,
    iterations_per_shard: int,
    shards: int = 2,
    jobs: int | None = None,
    base_seed: int = 0,
    coverage: str = "lp",
    monitor_dcache: bool = False,
    use_special_seeds: bool = True,
    random_seed_count: int = 4,
    splice_probability: float = 0.15,
    mutation_rounds: int = 3,
    detector: str = "ift",
    contract: str = "ct-seq",
    inputs_per_class: int = 3,
    max_spec_window: int = 16,
    instruction_categories: tuple[str, ...] = (),
    static_prune: bool = False,
    stop_kind: str | None = None,
) -> CampaignReport:
    """Run ``shards`` independent campaigns and merge their reports.

    Each shard is a full serial campaign at its :func:`shard_seed`;
    ``jobs`` bounds the number of concurrent worker processes
    (``None``/1 = inline).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    specs = [
        ShardSpec(
            shard=shard,
            config=config,
            seed=shard_seed(base_seed, shard),
            coverage=coverage,
            iterations=iterations_per_shard,
            monitor_dcache=monitor_dcache,
            use_special_seeds=use_special_seeds,
            random_seed_count=random_seed_count,
            splice_probability=splice_probability,
            mutation_rounds=mutation_rounds,
            detector=detector,
            contract=contract,
            inputs_per_class=inputs_per_class,
            max_spec_window=max_spec_window,
            instruction_categories=tuple(instruction_categories),
            static_prune=static_prune,
            stop_kind=stop_kind,
        )
        for shard in range(shards)
    ]
    return merge_reports(map_shards(_run_shard, specs, jobs))


def run_sharded_timed_campaign(
    config,
    seconds: float,
    shards: int = 2,
    jobs: int | None = None,
    base_seed: int = 0,
    coverage: str = "lp",
    monitor_dcache: bool = True,
) -> CampaignReport:
    """Sharded version of the paper's time-budgeted (24-hour) runs.

    Every shard fuzzes a distinct seed stream for the *same* wall-clock
    budget; with ``jobs >= shards`` the whole sharded campaign takes the
    budget of one.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    specs = [
        ShardSpec(
            shard=shard,
            config=config,
            seed=shard_seed(base_seed, shard),
            coverage=coverage,
            seconds=seconds,
            monitor_dcache=monitor_dcache,
        )
        for shard in range(shards)
    ]
    return merge_reports(map_shards(_run_shard, specs, jobs))
