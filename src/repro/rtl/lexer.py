"""Tokenizer for the Verilog subset.

Handles identifiers, keywords, sized and unsized numeric literals
(``8'hFF``, ``4'b1010``, ``'d15``, ``42``), all operators used by the
subset (including ``<=``, which the parser disambiguates between
non-blocking assignment and less-equal by context), and ``//`` and
``/* */`` comments.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass


class LexError(ValueError):
    """Bad input character or malformed literal, with line info."""


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "posedge", "negedge", "if", "else", "begin", "end",
})

#: Multi-character punctuation, longest first so maximal munch works.
_PUNCTUATION = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "@",
    "=", "+", "-", "*", "&", "|", "^", "~", "!", "<", ">", "?", "/", "%",
)

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_SIZED = re.compile(r"(\d+)?'([bdhoBDHO])([0-9a-fA-F_xXzZ?]+)")
_UNSIGNED = re.compile(r"\d[\d_]*")

_BASE_RADIX = {"b": 2, "d": 10, "h": 16, "o": 8}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int | None  # for numbers
    width: int | None  # for sized numbers
    line: int


class Lexer:
    """One-pass tokenizer; produces a list ending with an EOF token."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenKind.EOF, "", None, None, self.line))
                return tokens
            tokens.append(self._next_token())

    def _skip_whitespace_and_comments(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch.isspace():
                self.pos += 1
            elif text.startswith("//", self.pos):
                end = text.find("\n", self.pos)
                self.pos = len(text) if end < 0 else end
            elif text.startswith("/*", self.pos):
                end = text.find("*/", self.pos + 2)
                if end < 0:
                    raise LexError(f"line {self.line}: unterminated block comment")
                self.line += text.count("\n", self.pos, end)
                self.pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        text = self.text

        sized = _SIZED.match(text, self.pos)
        if sized:
            width_text, base, digits = sized.groups()
            radix = _BASE_RADIX[base.lower()]
            cleaned = digits.replace("_", "")
            if re.search(r"[xXzZ?]", cleaned):
                # Unknown/high-Z bits are treated as 0 (two-state simulation).
                cleaned = re.sub(r"[xXzZ?]", "0", cleaned)
            try:
                value = int(cleaned, radix)
            except ValueError:
                raise LexError(
                    f"line {self.line}: bad digits {digits!r} for base {base!r}"
                ) from None
            width = int(width_text) if width_text else None
            self.pos = sized.end()
            return Token(TokenKind.NUMBER, sized.group(0), value, width, self.line)

        ident = _IDENT.match(text, self.pos)
        if ident:
            word = ident.group(0)
            self.pos = ident.end()
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            return Token(kind, word, None, None, self.line)

        number = _UNSIGNED.match(text, self.pos)
        if number:
            word = number.group(0)
            self.pos = number.end()
            return Token(
                TokenKind.NUMBER, word, int(word.replace("_", "")), None, self.line
            )

        for punct in _PUNCTUATION:
            if text.startswith(punct, self.pos):
                self.pos += len(punct)
                return Token(TokenKind.PUNCT, punct, None, None, self.line)

        raise LexError(f"line {self.line}: unexpected character {text[self.pos]!r}")
