"""The executable specification of :class:`repro.rtl.trace.SignalTrace`.

A deliberately simple event-*list* trace with the same public API as the
columnar implementation: one :class:`ChangeEvent` per change, and every
query answered by a plain linear scan.  It exists so the equivalence
suite (``tests/test_trace_columnar.py``) can drive random record/query
interleavings through both implementations and require identical
answers — the columnar store's bisects, per-signal indexes, snapshot
resume memo and cached window views must never change a result, only
its cost.

Not used on any production path; ``events_examined`` telemetry is
maintained (as the naive full-scan cost) but carries no contract here.
"""

from __future__ import annotations

from repro.rtl.trace import ChangeEvent


class ReferenceSignalTrace:
    """Plain event-list trace; every query is a full linear scan."""

    def __init__(self, signal_names: list[str], initial: list[int]):
        if len(signal_names) != len(initial):
            raise ValueError("signal_names and initial must have equal length")
        self.signal_names = list(signal_names)
        self.initial = list(initial)
        self.events: list[ChangeEvent] = []
        self._index_of = {name: i for i, name in enumerate(signal_names)}
        self.events_examined = 0
        self.final_cycle = -1

    def index_of(self, name: str) -> int:
        return self._index_of[name]

    def record(self, cycle: int, signal: int, old: int, new: int) -> None:
        if cycle < self.final_cycle:
            raise ValueError(
                f"events must be appended in cycle order ({cycle} < {self.final_cycle})"
            )
        self.record_unchecked(cycle, signal, old, new)

    def record_unchecked(self, cycle: int, signal: int, old: int,
                         new: int) -> None:
        self.events.append(ChangeEvent(cycle, signal, old, new))
        self.final_cycle = cycle

    def close(self, last_cycle: int) -> None:
        self.final_cycle = max(self.final_cycle, last_cycle)

    # -- queries (all linear scans) -----------------------------------------

    def snapshot(self, cycle: int) -> list[int]:
        state = list(self.initial)
        for event in self.events:
            if event.cycle > cycle:
                break
            state[event.signal] = event.new
            self.events_examined += 1
        return state

    def value_of(self, name: str, cycle: int) -> int:
        index = self._index_of[name]
        value = self.initial[index]
        for event in self.events:
            if event.cycle > cycle:
                break
            if event.signal == index:
                value = event.new
                self.events_examined += 1
        return value

    def events_in(self, start: int, end: int) -> list[ChangeEvent]:
        return [e for e in self.events if start <= e.cycle <= end]

    def signal_event_positions(self, indices) -> list[int]:
        return [
            position for position, event in enumerate(self.events)
            if event.signal in indices
        ]

    def events_for_signals(self, indices) -> list[ChangeEvent]:
        return [e for e in self.events if e.signal in indices]

    def toggled_signals(self, start: int, end: int) -> set[int]:
        return {e.signal for e in self.events_in(start, end)}

    def toggle_counts(self, start: int, end: int) -> dict[int, int]:
        counts: dict[int, int] = {}
        for event in self.events_in(start, end):
            counts[event.signal] = counts.get(event.signal, 0) + 1
        return counts

    def diff(self, start: int, end: int) -> dict[int, tuple[int, int]]:
        before = self.snapshot(start)
        after = self.snapshot(end)
        return {
            index: (before[index], after[index])
            for index in range(len(before))
            if before[index] != after[index]
        }

    def __len__(self) -> int:
        return len(self.events)
