"""Change-event signal traces ("waveforms") and snapshot reconstruction.

The paper's Microarchitecture Visualizer dumps waveforms and slices them
into per-cycle snapshots of the whole processor state.  Materialising a
full snapshot per cycle is VCD-scale data, so — like a waveform file — we
store the *initial state plus change events* and reconstruct snapshots on
demand.  The Leakage Detector only ever needs snapshots at speculative
window boundaries, and toggle/LP coverage are computed directly from the
event stream, which makes thousands of fuzzing iterations tractable.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass


@dataclass(frozen=True)
class ChangeEvent:
    """One signal change: at the end of ``cycle``, ``signal`` became ``new``."""

    cycle: int
    signal: int  # index into the trace's signal-name table
    old: int
    new: int


class SignalTrace:
    """A recorded simulation: signal names, initial values, change events.

    Cycle convention: ``initial`` is the state *before* cycle 0 executes;
    an event with ``cycle == c`` means the signal changed during cycle
    ``c``, i.e. it is visible in the snapshot *at the end of* cycle ``c``.
    ``snapshot(c)`` returns the end-of-cycle-``c`` state; ``snapshot(-1)``
    returns the initial state.
    """

    def __init__(self, signal_names: list[str], initial: list[int]):
        if len(signal_names) != len(initial):
            raise ValueError("signal_names and initial must have equal length")
        self.signal_names = list(signal_names)
        self.initial = list(initial)
        self.events: list[ChangeEvent] = []
        self._index_of = {name: i for i, name in enumerate(signal_names)}
        self._event_cycles: list[int] = []  # parallel to events, for bisect
        self.final_cycle = -1

    def index_of(self, name: str) -> int:
        """Index of a signal by hierarchical name."""
        return self._index_of[name]

    def record(self, cycle: int, signal: int, old: int, new: int) -> None:
        """Append a change event (cycles must be non-decreasing)."""
        if cycle < self.final_cycle:
            raise ValueError(
                f"events must be appended in cycle order ({cycle} < {self.final_cycle})"
            )
        self.events.append(ChangeEvent(cycle, signal, old, new))
        self._event_cycles.append(cycle)
        self.final_cycle = cycle

    def close(self, last_cycle: int) -> None:
        """Mark the end of the simulation (even if the tail was quiet)."""
        self.final_cycle = max(self.final_cycle, last_cycle)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def snapshot(self, cycle: int) -> list[int]:
        """Full state at the *end* of ``cycle`` (``-1`` = initial state)."""
        state = list(self.initial)
        for event in self.events:
            if event.cycle > cycle:
                break
            state[event.signal] = event.new
        return state

    def value_of(self, name: str, cycle: int) -> int:
        """Value of one signal at the end of ``cycle``."""
        index = self._index_of[name]
        value = self.initial[index]
        for event in self.events:
            if event.cycle > cycle:
                break
            if event.signal == index:
                value = event.new
        return value

    def events_in(self, start: int, end: int) -> list[ChangeEvent]:
        """Events with ``start <= cycle <= end`` (cycle-ordered)."""
        lo = bisect_right(self._event_cycles, start - 1)
        hi = bisect_right(self._event_cycles, end)
        return self.events[lo:hi]

    def toggled_signals(self, start: int, end: int) -> set[int]:
        """Indices of signals that changed value in [start, end]."""
        return {event.signal for event in self.events_in(start, end)}

    def toggle_counts(self, start: int, end: int) -> dict[int, int]:
        """Per-signal change counts in [start, end]."""
        counts: dict[int, int] = {}
        for event in self.events_in(start, end):
            counts[event.signal] = counts.get(event.signal, 0) + 1
        return counts

    def diff(self, start: int, end: int) -> dict[int, tuple[int, int]]:
        """Signals whose value differs between the end of ``start`` and
        the end of ``end``; maps signal index to (value_at_start,
        value_at_end).

        This is the paper's snapshot discrepancy: the Δ between the
        before-speculative and after-speculative snapshots.
        """
        before = self.snapshot(start)
        after = self.snapshot(end)
        return {
            index: (before[index], after[index])
            for index in range(len(before))
            if before[index] != after[index]
        }

    def __len__(self) -> int:
        return len(self.events)
