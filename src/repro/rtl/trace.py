"""Change-event signal traces ("waveforms") with indexed, columnar storage.

The paper's Microarchitecture Visualizer dumps waveforms and slices them
into per-cycle snapshots of the whole processor state.  Materialising a
full snapshot per cycle is VCD-scale data, so — like a waveform file — we
store the *initial state plus change events* and reconstruct snapshots on
demand.

Storage is **columnar**: four parallel machine-typed arrays (cycle,
signal index, old value, new value) instead of one Python object per
event.  A campaign appends 10-25k events per iteration, hundreds of
thousands per run of the bench harness — as tuples those dominate both
the allocator and the cyclic garbage collector, and every query path
pays per-event unpacking.  The columns keep recording at four C-level
appends, let queries walk exactly the columns they need (a toggle count
reads one column, a boundary diff three), and drop per-event memory from
a tracked 4-tuple to 32 raw bytes.  :class:`ChangeEvent` objects are
materialised only when a caller explicitly asks for them
(:attr:`SignalTrace.events`, :meth:`SignalTrace.events_in`,
:meth:`SignalTrace.events_for_signals`); every internal consumer works
positionally over :meth:`SignalTrace.columns`.

Reconstruction is served by three indexes, all derived from the fact
that events are appended in cycle order:

* the **cycle column itself** is the global bisect index for
  ``snapshot()``, ``events_in()`` and window bounds;
* a **per-signal index** (event positions and cycles per signal, also
  machine-typed arrays) so ``value_of()`` is a single bisect and
  consumers like the window extractor can walk only the events of the
  signals they care about (:meth:`SignalTrace.signal_event_positions`);
* a **per-window view cache** (:meth:`SignalTrace.window_view`): the
  Leakage Detector, the Vulnerability Detector and the LP Coverage
  Calculator all interrogate the *same* speculative windows, so each
  window's derivations are computed once per trace and shared.  Views
  hold column references, never the trace itself, so a trace and its
  cached views form no reference cycle — run artifacts free by
  reference counting alone, without waiting on the cyclic collector.

``events_examined`` counts how many events each query path actually
touched; the E9 benchmark uses it to pin the indexed fast path against
the naive full-scan cost, and the bench gate uses it as a
machine-independent regression check.

A retained reference implementation with the same API but the seed's
plain event-list storage lives in :mod:`repro.rtl.trace_reference`; the
equivalence suite (``tests/test_trace_columnar.py``) drives both through
random record/query interleavings and requires identical answers.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import NamedTuple


class ChangeEvent(NamedTuple):
    """One signal change: at the end of ``cycle``, ``signal`` became ``new``.

    Materialised *on request only* — the trace stores columns, not event
    objects.  A :class:`~typing.NamedTuple` so the (cold) consumers that
    do ask for events (VCD export, toggle coverage, tests) keep field
    access by name at tuple cost.
    """

    cycle: int
    signal: int  # index into the trace's signal-name table
    old: int
    new: int


class TraceColumns(NamedTuple):
    """Read-only view of the trace's four event columns.

    Parallel arrays, one entry per event in append (cycle) order.
    ``cycles`` and ``signals`` are signed 64-bit (``'q'``), ``olds`` and
    ``news`` unsigned (``'Q'``) — traced values are masked 64-bit words.
    Callers must treat the arrays as immutable; they are the live
    storage, not copies.
    """

    cycles: array
    signals: array
    olds: array
    news: array


class WindowView:
    """Cached per-window query results over one ``[start, end]`` slice.

    Holds references to the trace's *columns* and telemetry cell — never
    the trace object itself — so trace and view form no reference cycle.
    Derivations are computed lazily and memoised per view, and split by
    the columns they need: ``toggled()``/``counts()`` walk only the
    signal column, while ``diff()`` (asked only for misspeculated
    windows, a small minority) walks signal+old+new.
    """

    __slots__ = ("start", "end", "_lo", "_hi", "_cycles", "_signals",
                 "_olds", "_news", "_examined",
                 "_toggled", "_counts", "_diff")

    def __init__(self, columns: TraceColumns, examined: list,
                 start: int, end: int, lo: int, hi: int):
        self._cycles, self._signals, self._olds, self._news = columns
        self._examined = examined
        self.start = start
        self.end = end
        self._lo = lo
        self._hi = hi
        self._toggled: set[int] | None = None
        self._counts: dict[int, int] | None = None
        self._diff: dict[int, tuple[int, int]] | None = None

    @property
    def events(self) -> list[ChangeEvent]:
        """The window's change events (cycle-ordered, materialised)."""
        lo, hi = self._lo, self._hi
        new = tuple.__new__
        return [
            new(ChangeEvent, quad)
            for quad in zip(self._cycles[lo:hi], self._signals[lo:hi],
                            self._olds[lo:hi], self._news[lo:hi])
        ]

    def __len__(self) -> int:
        return self._hi - self._lo

    def _derive_toggled(self) -> None:
        """The toggled-signal set: one C-level ``set()`` over the slice.

        This is the hottest derivation (LP coverage asks it for *every*
        speculative window), so it deliberately does not piggyback the
        per-signal count dict — ``set(array_slice)`` runs an order of
        magnitude faster than a Python counting loop, and counts are a
        cold path (energy analysis, tests).
        """
        self._examined[0] += self._hi - self._lo
        self._toggled = set(self._signals[self._lo:self._hi])

    def _derive_counts(self) -> None:
        """One pass over the signal column fills the per-signal counts."""
        self._examined[0] += self._hi - self._lo
        counts: dict[int, int] = {}
        counts_get = counts.get
        for signal in self._signals[self._lo:self._hi]:
            counts[signal] = counts_get(signal, 0) + 1
        self._counts = counts
        if self._toggled is None:
            self._toggled = set(counts)

    def _derive_diff(self) -> None:
        """One pass over signal+old+new fills the boundary diff."""
        lo, hi = self._lo, self._hi
        self._examined[0] += hi - lo
        first_old: dict[int, int] = {}
        last_new: dict[int, int] = {}
        for signal, old, new in zip(self._signals[lo:hi],
                                    self._olds[lo:hi], self._news[lo:hi]):
            if signal not in first_old:
                first_old[signal] = old
            last_new[signal] = new
        self._diff = {
            signal: (first_old[signal], last_new[signal])
            for signal in first_old
            if first_old[signal] != last_new[signal]
        }

    def toggled(self) -> set[int]:
        """Indices of signals that changed value inside the window."""
        if self._toggled is None:
            self._derive_toggled()
        return self._toggled

    def counts(self) -> dict[int, int]:
        """Per-signal change counts inside the window."""
        if self._counts is None:
            self._derive_counts()
        return self._counts

    def diff(self) -> dict[int, tuple[int, int]]:
        """Signals whose value differs across the window boundary.

        Maps signal index to ``(value_before_start, value_at_end)``.
        Because events carry their pre-change value, the boundary diff
        falls out of the slice alone: a signal's first in-window event
        holds the before-window value, its last the end-of-window value
        — no snapshot reconstruction needed.
        """
        if self._diff is None:
            self._derive_diff()
        return self._diff


class SignalTrace:
    """A recorded simulation: signal names, initial values, change events.

    Cycle convention: ``initial`` is the state *before* cycle 0 executes;
    an event with ``cycle == c`` means the signal changed during cycle
    ``c``, i.e. it is visible in the snapshot *at the end of* cycle ``c``.
    ``snapshot(c)`` returns the end-of-cycle-``c`` state; ``snapshot(-1)``
    returns the initial state.
    """

    def __init__(self, signal_names: list[str], initial: list[int],
                 _index_of: dict[str, int] | None = None):
        if len(signal_names) != len(initial):
            raise ValueError("signal_names and initial must have equal length")
        self.signal_names = list(signal_names)
        self.initial = list(initial)
        #: The four event columns (see :class:`TraceColumns`).  The
        #: cycle column doubles as the global bisect index.
        self._cycles = array("q")
        self._signals = array("q")
        self._olds = array("Q")
        self._news = array("Q")
        # The name->index map is shareable across traces of one netlist
        # (it is never mutated); rebuilt only when not supplied.
        self._index_of = (
            _index_of if _index_of is not None
            else {name: i for i, name in enumerate(signal_names)}
        )
        #: Per-signal index: event positions and cycles, parallel typed
        #: arrays per signal.  Built lazily (recording is the simulator's
        #: hot path; queries happen after a run ends) and extended
        #: incrementally.
        self._signal_positions: dict[int, array] = {}
        self._signal_cycles: dict[int, array] = {}
        self._signal_indexed = 0  # events already in the per-signal index
        #: Window-view cache, invalidated lazily: views built for an
        #: older event count are discarded on the next window_view()
        #: call, so the recording fast path never touches the cache.
        self._window_views: dict[tuple[int, int], WindowView] = {}
        self._window_views_len = 0
        #: Memoised snapshot: state after the first ``_snap_hi`` events.
        self._snap_hi = 0
        self._snap_state: list[int] | None = None
        #: Telemetry cell shared with every view this trace hands out
        #: (a one-slot list, so views need no trace back-reference).
        self._examined = [0]
        self.final_cycle = -1

    @property
    def events_examined(self) -> int:
        """Telemetry: total events examined by reconstruction queries."""
        return self._examined[0]

    @events_examined.setter
    def events_examined(self, value: int) -> None:
        self._examined[0] = value

    @property
    def events(self) -> list[ChangeEvent]:
        """The full event stream, materialised as :class:`ChangeEvent`.

        A fresh list per call — the storage is the columns.  Meant for
        cold consumers (VCD export, toggle coverage, tests); hot paths
        use :meth:`columns` / :meth:`signal_event_positions`.
        """
        new = tuple.__new__
        return [
            new(ChangeEvent, quad)
            for quad in zip(self._cycles, self._signals,
                            self._olds, self._news)
        ]

    def columns(self) -> TraceColumns:
        """The live event columns (read-only by convention)."""
        return TraceColumns(self._cycles, self._signals,
                            self._olds, self._news)

    def index_of(self, name: str) -> int:
        """Index of a signal by hierarchical name."""
        return self._index_of[name]

    def record(self, cycle: int, signal: int, old: int, new: int) -> None:
        """Append a change event (cycles must be non-decreasing)."""
        if cycle < self.final_cycle:
            raise ValueError(
                f"events must be appended in cycle order ({cycle} < {self.final_cycle})"
            )
        self.record_unchecked(cycle, signal, old, new)

    def record_unchecked(self, cycle: int, signal: int, old: int,
                         new: int) -> None:
        """:meth:`record` minus the cycle-ordering check — four column
        appends.  Writers whose cycle counter is monotonic by
        construction and that :meth:`close` the trace when done
        (:class:`repro.boom.tracer.TraceWriter`) may instead append
        through :meth:`appenders`, which skips this call's per-event
        Python frame entirely.
        """
        self._cycles.append(cycle)
        self._signals.append(signal)
        self._olds.append(old)
        self._news.append(new)
        self.final_cycle = cycle

    def appenders(self):
        """The four bound column-append methods, ``(cycle, signal, old,
        new)`` order — the sanctioned zero-overhead recording fast path.

        Contract for callers: append one value to *each* column per
        event, with non-decreasing cycles, and call :meth:`close` with
        the last cycle when recording ends (``final_cycle`` is not
        maintained per append on this path).  All query-side invariants
        (window-view cache, per-signal index, snapshot memo) are
        validated lazily against the column length, so they hold
        whichever append path was used.
        """
        return (self._cycles.append, self._signals.append,
                self._olds.append, self._news.append)

    def _ensure_signal_index(self) -> None:
        """Bring the per-signal index up to date with the event columns."""
        count = len(self._cycles)
        if self._signal_indexed == count:
            return
        positions = self._signal_positions
        cycles = self._signal_cycles
        positions_get = positions.get
        start = self._signal_indexed
        position = start
        for cycle, signal in zip(self._cycles[start:], self._signals[start:]):
            bucket = positions_get(signal)
            if bucket is None:
                positions[signal] = array("q", (position,))
                cycles[signal] = array("q", (cycle,))
            else:
                bucket.append(position)
                cycles[signal].append(cycle)
            position += 1
        self._signal_indexed = count

    def close(self, last_cycle: int) -> None:
        """Mark the end of the simulation (even if the tail was quiet)."""
        if self._cycles and self._cycles[-1] > self.final_cycle:
            # The appenders() fast path does not maintain final_cycle.
            self.final_cycle = self._cycles[-1]
        self.final_cycle = max(self.final_cycle, last_cycle)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def snapshot(self, cycle: int) -> list[int]:
        """Full state at the *end* of ``cycle`` (``-1`` = initial state).

        Bisects to the event range instead of scanning the stream, and
        resumes from the previously reconstructed snapshot when that one
        lies at or before ``cycle`` — so a cycle-ordered sequence of
        snapshot queries (the common case: window boundaries in cycle
        order) replays each event at most once overall.
        """
        hi = bisect_right(self._cycles, cycle)
        if self._snap_state is not None and self._snap_hi <= hi:
            state = list(self._snap_state)
            lo = self._snap_hi
        else:
            state = list(self.initial)
            lo = 0
        for signal, new in zip(self._signals[lo:hi], self._news[lo:hi]):
            state[signal] = new
        self._examined[0] += hi - lo
        self._snap_state = list(state)
        self._snap_hi = hi
        return state

    def value_of(self, name: str, cycle: int) -> int:
        """Value of one signal at the end of ``cycle`` (one bisect)."""
        index = self._index_of[name]
        self._ensure_signal_index()
        cycles = self._signal_cycles.get(index)
        if not cycles:
            return self.initial[index]
        pos = bisect_right(cycles, cycle)
        self._examined[0] += 1
        if pos == 0:
            return self.initial[index]
        return self._news[self._signal_positions[index][pos - 1]]

    def events_in(self, start: int, end: int) -> list[ChangeEvent]:
        """Events with ``start <= cycle <= end`` (cycle-ordered)."""
        lo = bisect_right(self._cycles, start - 1)
        hi = bisect_right(self._cycles, end)
        new = tuple.__new__
        return [
            new(ChangeEvent, quad)
            for quad in zip(self._cycles[lo:hi], self._signals[lo:hi],
                            self._olds[lo:hi], self._news[lo:hi])
        ]

    def signal_event_positions(self, indices) -> list[int]:
        """Positions of the given signals' events, in stream order.

        The zero-object counterpart of :meth:`events_for_signals`:
        consumers walk the returned positions against :meth:`columns`
        without a single event object being built.  When the per-signal
        index is already built it is merged; otherwise one filtered pass
        over the signal column answers the query without paying to index
        every signal (the common campaign case queries one fixed subset
        once per trace).
        """
        if self._signal_indexed == len(self._cycles):
            merged: list[int] = []
            for index in indices:
                bucket = self._signal_positions.get(index)
                if bucket is not None:
                    merged.extend(bucket)
            merged.sort()
            self._examined[0] += len(merged)
            return merged
        signals = self._signals
        if len(indices) <= 8:
            # Small subset (the window extractor's five ROB indicator
            # signals): repeated C-level array.index scans — one O(n)
            # pass per target signal — beat a Python loop over every
            # event by an order of magnitude.
            matched = []
            count = len(signals)
            for target in indices:
                start = 0
                while True:
                    try:
                        position = signals.index(target, start)
                    except ValueError:
                        break
                    matched.append(position)
                    start = position + 1
                    if start >= count:
                        break
            matched.sort()
        else:
            matched = [
                position for position, signal in enumerate(signals)
                if signal in indices
            ]
        self._examined[0] += len(matched)
        return matched

    def events_for_signals(self, indices: set[int]) -> list[ChangeEvent]:
        """All events of the given signals, materialised in stream order.

        Kept for API compatibility and cold callers; hot consumers
        (window extraction, the hardware-trace collector) walk
        :meth:`signal_event_positions` against :meth:`columns` instead.
        """
        cycles, signals, olds, news = (self._cycles, self._signals,
                                       self._olds, self._news)
        new = tuple.__new__
        return [
            new(ChangeEvent,
                (cycles[position], signals[position],
                 olds[position], news[position]))
            for position in self.signal_event_positions(indices)
        ]

    def window_view(self, start: int, end: int) -> WindowView:
        """The (cached) per-window query view for ``[start, end]``."""
        views = self._window_views
        count = len(self._cycles)
        if self._window_views_len != count:
            # Events were appended since the cache was filled: the old
            # views' bounds are stale for the new stream.
            views.clear()
            self._window_views_len = count
        key = (start, end)
        view = views.get(key)
        if view is None:
            lo = bisect_right(self._cycles, start - 1)
            hi = bisect_right(self._cycles, end)
            view = WindowView(self.columns(), self._examined,
                              start, end, lo, hi)
            views[key] = view
        return view

    def toggled_signals(self, start: int, end: int) -> set[int]:
        """Indices of signals that changed value in [start, end].

        Returns a fresh set (the cached window view keeps the memo), so
        callers may mutate the result freely.
        """
        return set(self.window_view(start, end).toggled())

    def toggle_counts(self, start: int, end: int) -> dict[int, int]:
        """Per-signal change counts in [start, end] (fresh dict)."""
        return dict(self.window_view(start, end).counts())

    def diff(self, start: int, end: int) -> dict[int, tuple[int, int]]:
        """Signals whose value differs between the end of ``start`` and
        the end of ``end``; maps signal index to (value_at_start,
        value_at_end).

        This is the paper's snapshot discrepancy: the Δ between the
        before-speculative and after-speculative snapshots.  Computed
        from the ``(start, end]`` event slice alone (first ``old``, last
        ``new`` per signal) — equivalent to comparing reconstructed
        snapshots, but proportional to the window's event count.
        """
        if end < start:  # degenerate reversed range: compare snapshots
            before = self.snapshot(start)
            after = self.snapshot(end)
            return {
                index: (before[index], after[index])
                for index in range(len(before))
                if before[index] != after[index]
            }
        return dict(self.window_view(start + 1, end).diff())

    def __len__(self) -> int:
        return len(self._cycles)
