"""Change-event signal traces ("waveforms") with indexed queries.

The paper's Microarchitecture Visualizer dumps waveforms and slices them
into per-cycle snapshots of the whole processor state.  Materialising a
full snapshot per cycle is VCD-scale data, so — like a waveform file — we
store the *initial state plus change events* and reconstruct snapshots on
demand.

Reconstruction is served by three indexes, all derived from the fact
that events are appended in cycle order:

* a **global cycle index** (``_event_cycles``) so ``snapshot()``,
  ``events_in()`` and friends bisect to the relevant event range instead
  of scanning the whole stream;
* a **per-signal index** (event positions and cycles per signal) so
  ``value_of()`` is a single bisect and window toggle counts can be
  answered per signal, and so consumers like the window extractor can
  walk only the events of the signals they care about
  (:meth:`events_for_signals`);
* a **per-window view cache** (:meth:`window_view`): the Leakage
  Detector, the Vulnerability Detector and the LP Coverage Calculator
  all interrogate the *same* speculative windows, so each window's event
  slice — and the toggled-signal set / toggle counts / boundary diff
  derived from it — is computed once per trace and shared.

``events_examined`` counts how many events each query path actually
touched; the E9 benchmark uses it to pin the indexed fast path against
the naive full-scan cost.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import NamedTuple


class ChangeEvent(NamedTuple):
    """One signal change: at the end of ``cycle``, ``signal`` became ``new``.

    A :class:`~typing.NamedTuple` rather than a dataclass: the simulator
    appends one per signal change (hundreds of thousands per campaign),
    and tuple construction is several times cheaper than a frozen
    dataclass ``__init__`` while keeping field access by name.
    """

    cycle: int
    signal: int  # index into the trace's signal-name table
    old: int
    new: int


class WindowView:
    """Cached per-window query results over one ``[start, end]`` slice.

    All derived values are computed lazily from the slice and memoised,
    so however many consumers ask (leakage diff, LP coverage, root-cause
    analysis), the window's events are examined once per derivation.
    """

    __slots__ = ("_trace", "start", "end", "_lo", "_hi",
                 "_toggled", "_counts", "_diff")

    def __init__(self, trace: "SignalTrace", start: int, end: int,
                 lo: int, hi: int):
        self._trace = trace
        self.start = start
        self.end = end
        self._lo = lo
        self._hi = hi
        self._toggled: set[int] | None = None
        self._counts: dict[int, int] | None = None
        self._diff: dict[int, tuple[int, int]] | None = None

    @property
    def events(self) -> list[ChangeEvent]:
        """The window's change events (cycle-ordered slice)."""
        return self._trace.events[self._lo:self._hi]

    def __len__(self) -> int:
        return self._hi - self._lo

    def _derive(self) -> None:
        """One pass over the slice fills every memoised derivation.

        The window's consumers between them need all three views, so
        the slice is walked exactly once per window per trace.  The walk
        indexes the shared event list directly — no per-window slice
        copy — and unpacks each event tuple once.
        """
        self._trace.events_examined += len(self)
        counts: dict[int, int] = {}
        first_old: dict[int, int] = {}
        last_new: dict[int, int] = {}
        events = self._trace.events
        counts_get = counts.get
        for position in range(self._lo, self._hi):
            _cycle, signal, old, new = events[position]
            counts[signal] = counts_get(signal, 0) + 1
            if signal not in first_old:
                first_old[signal] = old
            last_new[signal] = new
        self._counts = counts
        self._toggled = set(counts)
        self._diff = {
            signal: (first_old[signal], last_new[signal])
            for signal in first_old
            if first_old[signal] != last_new[signal]
        }

    def toggled(self) -> set[int]:
        """Indices of signals that changed value inside the window."""
        if self._toggled is None:
            self._derive()
        return self._toggled

    def counts(self) -> dict[int, int]:
        """Per-signal change counts inside the window."""
        if self._counts is None:
            self._derive()
        return self._counts

    def diff(self) -> dict[int, tuple[int, int]]:
        """Signals whose value differs across the window boundary.

        Maps signal index to ``(value_before_start, value_at_end)``.
        Because events carry their pre-change value, the boundary diff
        falls out of the slice alone: a signal's first in-window event
        holds the before-window value, its last the end-of-window value
        — no snapshot reconstruction needed.
        """
        if self._diff is None:
            self._derive()
        return self._diff


class SignalTrace:
    """A recorded simulation: signal names, initial values, change events.

    Cycle convention: ``initial`` is the state *before* cycle 0 executes;
    an event with ``cycle == c`` means the signal changed during cycle
    ``c``, i.e. it is visible in the snapshot *at the end of* cycle ``c``.
    ``snapshot(c)`` returns the end-of-cycle-``c`` state; ``snapshot(-1)``
    returns the initial state.
    """

    def __init__(self, signal_names: list[str], initial: list[int],
                 _index_of: dict[str, int] | None = None):
        if len(signal_names) != len(initial):
            raise ValueError("signal_names and initial must have equal length")
        self.signal_names = list(signal_names)
        self.initial = list(initial)
        self.events: list[ChangeEvent] = []
        # The name->index map is shareable across traces of one netlist
        # (it is never mutated); rebuilt only when not supplied.
        self._index_of = (
            _index_of if _index_of is not None
            else {name: i for i, name in enumerate(signal_names)}
        )
        self._event_cycles: list[int] = []  # parallel to events, for bisect
        #: Per-signal index: event positions and cycles, parallel lists.
        #: Built lazily (recording is the simulator's hot path; queries
        #: happen after a run ends) and extended incrementally.
        self._signal_positions: dict[int, list[int]] = {}
        self._signal_cycles: dict[int, list[int]] = {}
        self._signal_indexed = 0  # events already in the per-signal index
        self._window_views: dict[tuple[int, int], WindowView] = {}
        #: Memoised snapshot: state after the first ``_snap_hi`` events.
        self._snap_hi = 0
        self._snap_state: list[int] | None = None
        #: Telemetry: total events examined by reconstruction queries.
        self.events_examined = 0
        self.final_cycle = -1

    def index_of(self, name: str) -> int:
        """Index of a signal by hierarchical name."""
        return self._index_of[name]

    def record(self, cycle: int, signal: int, old: int, new: int) -> None:
        """Append a change event (cycles must be non-decreasing)."""
        if cycle < self.final_cycle:
            raise ValueError(
                f"events must be appended in cycle order ({cycle} < {self.final_cycle})"
            )
        self.record_unchecked(cycle, signal, old, new)

    def record_unchecked(self, cycle: int, signal: int, old: int,
                         new: int) -> None:
        """:meth:`record` minus the cycle-ordering check — the recording
        fast path for writers whose cycle counter is monotonic by
        construction (:class:`repro.boom.tracer.TraceWriter`).  Keeping
        it here means every append path shares one body, so the trace's
        index/memo invariants cannot silently diverge between them.

        ``tuple.__new__`` skips the generated NamedTuple ``__new__`` —
        this runs once per actual signal change, hundreds of thousands
        of times per campaign.
        """
        self.events.append(
            tuple.__new__(ChangeEvent, (cycle, signal, old, new))
        )
        self._event_cycles.append(cycle)
        if self._window_views:
            self._window_views.clear()
        self.final_cycle = cycle

    def _ensure_signal_index(self) -> None:
        """Bring the per-signal index up to date with the event list."""
        events = self.events
        if self._signal_indexed == len(events):
            return
        positions = self._signal_positions
        cycles = self._signal_cycles
        positions_get = positions.get
        cycles_get = cycles.get
        for position in range(self._signal_indexed, len(events)):
            cycle, signal, _old, _new = events[position]
            bucket = positions_get(signal)
            if bucket is None:
                positions[signal] = [position]
                cycles[signal] = [cycle]
            else:
                bucket.append(position)
                cycles_get(signal).append(cycle)
        self._signal_indexed = len(events)

    def close(self, last_cycle: int) -> None:
        """Mark the end of the simulation (even if the tail was quiet)."""
        self.final_cycle = max(self.final_cycle, last_cycle)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def snapshot(self, cycle: int) -> list[int]:
        """Full state at the *end* of ``cycle`` (``-1`` = initial state).

        Bisects to the event range instead of scanning the stream, and
        resumes from the previously reconstructed snapshot when that one
        lies at or before ``cycle`` — so a cycle-ordered sequence of
        snapshot queries (the common case: window boundaries in cycle
        order) replays each event at most once overall.
        """
        hi = bisect_right(self._event_cycles, cycle)
        if self._snap_state is not None and self._snap_hi <= hi:
            state = list(self._snap_state)
            lo = self._snap_hi
        else:
            state = list(self.initial)
            lo = 0
        for event in self.events[lo:hi]:
            state[event.signal] = event.new
        self.events_examined += hi - lo
        self._snap_state = list(state)
        self._snap_hi = hi
        return state

    def value_of(self, name: str, cycle: int) -> int:
        """Value of one signal at the end of ``cycle`` (one bisect)."""
        index = self._index_of[name]
        self._ensure_signal_index()
        cycles = self._signal_cycles.get(index)
        if not cycles:
            return self.initial[index]
        pos = bisect_right(cycles, cycle)
        self.events_examined += 1
        if pos == 0:
            return self.initial[index]
        return self.events[self._signal_positions[index][pos - 1]].new

    def events_in(self, start: int, end: int) -> list[ChangeEvent]:
        """Events with ``start <= cycle <= end`` (cycle-ordered)."""
        lo = bisect_right(self._event_cycles, start - 1)
        hi = bisect_right(self._event_cycles, end)
        return self.events[lo:hi]

    def events_for_signals(self, indices: set[int]) -> list[ChangeEvent]:
        """All events of the given signals, in original stream order.

        Serves consumers that replay a small signal subset (e.g. the
        speculative-window extractor walking the five ROB indicator
        signals) without touching the rest of the stream.  When the
        per-signal index is already built it is used; otherwise a single
        filtered pass answers the query without paying to index every
        signal (the common campaign case queries one fixed subset once).
        """
        if self._signal_indexed == len(self.events):
            positions: list[int] = []
            for index in indices:
                positions.extend(self._signal_positions.get(index, ()))
            positions.sort()
            self.events_examined += len(positions)
            return [self.events[position] for position in positions]
        matched = [event for event in self.events if event[1] in indices]
        self.events_examined += len(matched)
        return matched

    def window_view(self, start: int, end: int) -> WindowView:
        """The (cached) per-window query view for ``[start, end]``."""
        key = (start, end)
        view = self._window_views.get(key)
        if view is None:
            lo = bisect_right(self._event_cycles, start - 1)
            hi = bisect_right(self._event_cycles, end)
            view = WindowView(self, start, end, lo, hi)
            self._window_views[key] = view
        return view

    def toggled_signals(self, start: int, end: int) -> set[int]:
        """Indices of signals that changed value in [start, end].

        Returns a fresh set (the cached window view keeps the memo), so
        callers may mutate the result freely.
        """
        return set(self.window_view(start, end).toggled())

    def toggle_counts(self, start: int, end: int) -> dict[int, int]:
        """Per-signal change counts in [start, end] (fresh dict)."""
        return dict(self.window_view(start, end).counts())

    def diff(self, start: int, end: int) -> dict[int, tuple[int, int]]:
        """Signals whose value differs between the end of ``start`` and
        the end of ``end``; maps signal index to (value_at_start,
        value_at_end).

        This is the paper's snapshot discrepancy: the Δ between the
        before-speculative and after-speculative snapshots.  Computed
        from the ``(start, end]`` event slice alone (first ``old``, last
        ``new`` per signal) — equivalent to comparing reconstructed
        snapshots, but proportional to the window's event count.
        """
        if end < start:  # degenerate reversed range: compare snapshots
            before = self.snapshot(start)
            after = self.snapshot(end)
            return {
                index: (before[index], after[index])
                for index in range(len(before))
                if before[index] != after[index]
            }
        return dict(self.window_view(start + 1, end).diff())

    def __len__(self) -> int:
        return len(self.events)
