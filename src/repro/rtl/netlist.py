"""Programmatic netlists: signals + explicit information-flow edges.

The BOOM-like core model is a behavioural simulator, not parsed Verilog,
but the offline phase needs an RTL-shaped view of it: the set of register
signals and the flow connections between them.  A :class:`Netlist` is
exactly that — the moral equivalent of what Chisel elaboration would hand
Pyverilog in the paper's flow.  Each hardware unit of the core declares
its registers and edges here; the IFG builder consumes either a netlist
or an elaborated Verilog design through the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NetSignal:
    """One netlist signal.

    ``is_state`` marks clocked registers (snapshot members); ``unit``
    names the owning hardware unit (for reports); ``width`` is
    informational at this level.  ``squash_cleaned`` declares that a
    pipeline flush provably restores the register (the netlist has no
    expressions for the taint classifier to prove it from) — sources
    with the flag classify flush-gated instead of
    speculative-reachable (:mod:`repro.analysis.taint`).
    """

    name: str
    width: int
    is_state: bool
    unit: str | None = None
    squash_cleaned: bool = False


class Netlist:
    """A flat signal/edge container with hierarchical dotted names."""

    def __init__(self, name: str):
        self.name = name
        self.signals: dict[str, NetSignal] = {}
        self.edges: list[tuple[str, str]] = []
        self._edge_set: set[tuple[str, str]] = set()
        #: Lint waivers (repro.analysis.diagnostics.Waiver), the
        #: netlist-side equivalent of ``// repro-lint: waive`` pragmas.
        self.waivers: list = []

    # -- declaration ---------------------------------------------------

    def reg(self, name: str, width: int = 64, unit: str | None = None,
            squash_cleaned: bool = False) -> str:
        """Declare a clocked register signal; returns its name."""
        return self._declare(name, width, is_state=True, unit=unit,
                             squash_cleaned=squash_cleaned)

    def wire(self, name: str, width: int = 64, unit: str | None = None) -> str:
        """Declare a combinational signal; returns its name."""
        return self._declare(name, width, is_state=False, unit=unit)

    def _declare(self, name: str, width: int, is_state: bool,
                 unit: str | None, squash_cleaned: bool = False) -> str:
        if name in self.signals:
            raise ValueError(f"duplicate netlist signal {name!r}")
        self.signals[name] = NetSignal(name, width, is_state, unit,
                                       squash_cleaned)
        return name

    def waive(self, check: str, pattern: str, reason: str = "") -> None:
        """Declare a lint waiver: silence ``check`` on leaf-name
        ``pattern`` (fnmatch glob), documenting ``reason``."""
        from repro.analysis.diagnostics import Waiver

        self.waivers.append(Waiver(check, pattern, reason))

    # -- connectivity ----------------------------------------------------

    def connect(self, src: str, dst: str) -> None:
        """Add a directed information-flow edge ``src -> dst``."""
        if src not in self.signals:
            raise KeyError(f"unknown source signal {src!r}")
        if dst not in self.signals:
            raise KeyError(f"unknown destination signal {dst!r}")
        if src == dst:
            raise ValueError(f"self-edge on {src!r}")
        key = (src, dst)
        if key not in self._edge_set:
            self._edge_set.add(key)
            self.edges.append(key)

    def connect_many(self, sources: list[str], dst: str) -> None:
        """Edges from every source to ``dst``."""
        for src in sources:
            self.connect(src, dst)

    def fanout(self, src: str, destinations: list[str]) -> None:
        """Edges from ``src`` to every destination."""
        for dst in destinations:
            self.connect(src, dst)

    # -- queries ---------------------------------------------------------

    def state_names(self) -> list[str]:
        """Register signal names, in declaration order."""
        return [s.name for s in self.signals.values() if s.is_state]

    def names_by_unit(self, unit: str) -> list[str]:
        """Signals owned by a unit (e.g. ``'dcache'``)."""
        return [s.name for s in self.signals.values() if s.unit == unit]

    def __len__(self) -> int:
        return len(self.signals)
