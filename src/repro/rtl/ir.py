"""Elaborated design IR: flat signals with hierarchical names.

Elaboration flattens a module hierarchy into one namespace of
``instance.path.signal`` names — the same naming the paper's IFG example
uses (``top.df1.q``).  The IR keeps three kinds of drivers:

* combinational assigns (``assign`` statements),
* port connections (input and output, kept distinct so the IFG builder
  can reproduce the paper's connection edges one-to-one), and
* flip-flop processes (``always @(posedge clk)`` bodies).

Both the RTL simulator and the IFG builder consume this IR; the
programmatic :class:`~repro.rtl.netlist.Netlist` used by the core model
lowers into the same signal/edge vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.rtl import ast


class SignalKind(enum.Enum):
    """Declared role of a signal in its module."""

    INPUT = "input"
    OUTPUT = "output"
    WIRE = "wire"
    REG = "reg"


@dataclass
class Signal:
    """One elaborated signal.

    ``is_state`` marks flip-flop outputs (signals written by non-blocking
    assignment), the "registers" whose values constitute a snapshot.
    ``depth`` is the hierarchy depth (0 = declared in the top module).
    """

    name: str
    width: int
    kind: SignalKind
    is_state: bool = False
    depth: int = 0


#: Driver kinds for elaborated assigns.
ASSIGN_COMB = "comb"
ASSIGN_CONN_IN = "conn_in"  # parent expression -> child input port
ASSIGN_CONN_OUT = "conn_out"  # child output port -> parent net


@dataclass(frozen=True)
class ElabAssign:
    """A combinational driver: ``target`` follows ``value`` continuously."""

    target: str
    value: ast.Expr
    kind: str  # one of the ASSIGN_* constants


@dataclass(frozen=True)
class ElabFF:
    """One ``always @(posedge clock)`` process with a qualified body."""

    clock: str
    body: ast.Statement


@dataclass
class ElaboratedDesign:
    """A flattened design: the unit of IFG extraction and simulation."""

    top: str
    signals: dict[str, Signal] = field(default_factory=dict)
    assigns: list[ElabAssign] = field(default_factory=list)
    ffs: list[ElabFF] = field(default_factory=list)

    def add_signal(self, signal: Signal) -> None:
        if signal.name in self.signals:
            raise ValueError(f"duplicate signal {signal.name!r}")
        self.signals[signal.name] = signal

    def state_signals(self) -> list[Signal]:
        """Signals written on clock edges (snapshot contents)."""
        return [s for s in self.signals.values() if s.is_state]

    def top_inputs(self) -> list[Signal]:
        """Top-level input ports (simulation stimulus targets)."""
        return [
            s for s in self.signals.values()
            if s.kind is SignalKind.INPUT and s.depth == 0
        ]

    def signal_names(self) -> list[str]:
        """All signal names in insertion (declaration) order."""
        return list(self.signals)

    def ff_targets(self) -> set[str]:
        """Names written by any flip-flop process."""
        targets: set[str] = set()
        for ff in self.ffs:
            _collect_targets(ff.body, targets)
        return targets


def _collect_targets(statement: ast.Statement, out: set[str]) -> None:
    if isinstance(statement, ast.NonBlocking):
        out.add(statement.target)
    elif isinstance(statement, ast.If):
        _collect_targets(statement.then_body, out)
        if statement.else_body is not None:
            _collect_targets(statement.else_body, out)
    elif isinstance(statement, ast.Block):
        for child in statement.statements:
            _collect_targets(child, out)
