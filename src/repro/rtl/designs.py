"""Reference Verilog designs written in the supported subset.

* :data:`LISTING_1` — the paper's §3.1 example, verbatim.
* :data:`PIPELINE_CPU` — a three-stage, accumulator-style streaming CPU
  used as a *second processor-under-test* for the Verilog route: it is
  parsed, elaborated, simulated cycle-by-cycle with
  :class:`~repro.rtl.sim.RtlSimulator`, and fed to the offline phase,
  demonstrating that Specure's front half is genuinely
  hardware-agnostic (it never sees the Python core model).
* :data:`SPEC_CPU` — a four-stage *speculative* RV32-subset core with a
  2-bit branch predictor, wrong-path fetch, flush-on-resolve, and a
  direct-mapped data cache whose tags survive squash.  It is the design
  behind the ``spec-cpu`` PUT (:mod:`repro.puts.spec_cpu`), built so the
  Verilog route genuinely misspeculates and leaves transient residue.

The streaming CPU's ISA (instructions arrive on ``instr`` each cycle,
8 bits: ``op[7:5] | arg[4:0]``):

    op 0  NOP
    op 1  LDI  — acc <= arg (zero-extended)
    op 2  ADD  — acc <= acc + r[arg[1:0]]
    op 3  XOR  — acc <= acc ^ r[arg[1:0]]
    op 4  ST   — r[arg[1:0]] <= acc
    op 5  SHL  — acc <= acc << 1

Three pipeline stages (fetch-latch, decode, execute) mean an
instruction's effect lands two cycles after it is presented; the
pipeline latches are the microarchitectural registers, the accumulator
and the register file are the architectural surface.
"""

LISTING_1 = """
module D_FF(input d, input clk, output q);
  reg q;
  always @(posedge clk)
    q <= d;
endmodule
module top(input clk, input i, output o);
  reg q1;
  D_FF df1 (.d(i), .clk(clk), .q(q1));
  D_FF df2 (.d(q1), .clk(clk), .q(o));
endmodule
"""

PIPELINE_CPU = """
// Three-stage streaming accumulator CPU (subset Verilog).
module regfile(input clk, input we, input [1:0] waddr,
               input [7:0] wdata, input [1:0] raddr,
               output [7:0] rdata,
               output [7:0] r0_q, output [7:0] r1_q,
               output [7:0] r2_q, output [7:0] r3_q);
  reg [7:0] r0;
  reg [7:0] r1;
  reg [7:0] r2;
  reg [7:0] r3;
  assign rdata = raddr == 2'd0 ? r0
               : raddr == 2'd1 ? r1
               : raddr == 2'd2 ? r2
               : r3;
  assign r0_q = r0;
  assign r1_q = r1;
  assign r2_q = r2;
  assign r3_q = r3;
  always @(posedge clk)
    if (we)
      if (waddr == 2'd0) r0 <= wdata;
      else if (waddr == 2'd1) r1 <= wdata;
      else if (waddr == 2'd2) r2 <= wdata;
      else r3 <= wdata;
endmodule

module alu(input [2:0] op, input [7:0] acc_in, input [7:0] operand,
           input [4:0] arg, output [7:0] result);
  assign result = op == 3'd1 ? {3'b000, arg}
                : op == 3'd2 ? acc_in + operand
                : op == 3'd3 ? acc_in ^ operand
                : op == 3'd5 ? acc_in << 1
                : acc_in;
endmodule

module cpu(input clk, input [7:0] instr, output [7:0] acc_out);
  // Stage 1: fetch latch.
  reg [7:0] instr_f;
  // Stage 2: decode latches.
  reg [2:0] op_d;
  reg [4:0] arg_d;
  // Architectural accumulator.
  reg [7:0] acc;

  wire [2:0] op_w;
  wire [4:0] arg_w;
  wire [7:0] operand;
  wire [7:0] alu_out;
  wire we;
  // Register-file observability taps: the harness snapshots them from
  // the trace; nothing inside the design reads them back.
  // repro-lint: waive dead-signal r?_q register-file observability taps for the trace writer
  wire [7:0] r0_q;
  wire [7:0] r1_q;
  wire [7:0] r2_q;
  wire [7:0] r3_q;

  assign op_w = instr_f[7:5];
  assign arg_w = instr_f[4:0];
  assign we = op_d == 3'd4;
  assign acc_out = acc;

  regfile rf (.clk(clk), .we(we), .waddr(arg_d[1:0]), .wdata(acc),
              .raddr(arg_d[1:0]), .rdata(operand),
              .r0_q(r0_q), .r1_q(r1_q), .r2_q(r2_q), .r3_q(r3_q));
  alu ex (.op(op_d), .acc_in(acc), .operand(operand), .arg(arg_d),
          .result(alu_out));

  always @(posedge clk) begin
    instr_f <= instr;
    op_d <= op_w;
    arg_d <= arg_w;
    if (op_d != 3'd0)
      if (op_d != 3'd4)
        acc <= alu_out;
  end
endmodule
"""

SPEC_CPU = """
// Four-stage speculative RV32-subset core (subset Verilog).
//
// Stages: F (fetch, branch prediction), D (decode, regfile read with
// bypass, ALU, branch resolve *computation*, dcache probe for loads),
// X1 (memory wait; the harness serves dmem_rdata here), X2 (commit:
// architectural writes, branch *resolution* and flush).  A branch
// resolves three cycles after fetch, so two wrong-path instructions
// reach D — and probe the data cache — before the flush.  The dcache
// fill is deliberately not gated by the flush: that surviving tag is
// the transient residue the detection stack hunts.
//
// ISA (RV32I encoding, registers truncated to x0..x7):
//   ADDI/XORI/ORI/ANDI, ADD/SUB/XOR/OR/AND, LW, SW,
//   BEQ/BNE/BLT/BGE, JAL (decode-at-fetch, never mispredicts),
//   SYSTEM (ECALL/EBREAK: halt).  Everything else is a NOP; unknown
//   funct3 in the ALU groups falls back to add.
module dcache(input clk, input probe, input [31:0] addr);
  // Direct-mapped, 4 sets x 1 way, 16-byte lines: set = addr[5:4],
  // tag = addr[31:6].  Tags are declared before valids so the trace
  // replays a first fill's tag ahead of its valid edge.
  // The tag/valid arrays are the design's deliberate Spectre residue:
  // the leakage detector observes them via the trace, never via an
  // RTL read port.
  // repro-lint: waive dead-signal s?w0_* transient cache state observed via trace, not readback
  reg [25:0] s0w0_tag;
  reg s0w0_valid;
  reg [25:0] s1w0_tag;
  reg s1w0_valid;
  reg [25:0] s2w0_tag;
  reg s2w0_valid;
  reg [25:0] s3w0_tag;
  reg s3w0_valid;
  wire [1:0] set_ix;
  wire [25:0] tag_in;
  assign set_ix = addr[5:4];
  assign tag_in = addr[31:6];
  always @(posedge clk)
    if (probe)
      if (set_ix == 2'd0) begin
        s0w0_tag <= tag_in;
        s0w0_valid <= 1'b1;
      end
      else if (set_ix == 2'd1) begin
        s1w0_tag <= tag_in;
        s1w0_valid <= 1'b1;
      end
      else if (set_ix == 2'd2) begin
        s2w0_tag <= tag_in;
        s2w0_valid <= 1'b1;
      end
      else begin
        s3w0_tag <= tag_in;
        s3w0_valid <= 1'b1;
      end
endmodule

module spec_cpu(input clk, input [31:0] instr, input [31:0] dmem_rdata);
  // Speculation-window strobes (ROB-protocol order: pc/word before
  // tag, mispredict before tag — the window extractor replays events
  // positionally in declaration order).  They exist for the trace
  // writer; only w_disp_tag is read back (it numbers d_btag).
  // repro-lint: waive dead-signal w_disp_* speculation-window strobes consumed by the trace writer
  // repro-lint: waive dead-signal w_res_* speculation-window strobes consumed by the trace writer
  reg [31:0] w_disp_pc;
  reg [31:0] w_disp_word;
  reg [31:0] w_disp_tag;
  reg w_res_mispredict;
  reg [31:0] w_res_tag;

  // Architectural state: commit-order pc and the register file.
  reg [31:0] pc;
  wire [31:0] x0;
  reg [31:0] x1;
  reg [31:0] x2;
  reg [31:0] x3;
  reg [31:0] x4;
  reg [31:0] x5;
  reg [31:0] x6;
  reg [31:0] x7;

  // 2-bit saturating branch-history counters, indexed by pc[3:2].
  reg [1:0] bht0;
  reg [1:0] bht1;
  reg [1:0] bht2;
  reg [1:0] bht3;

  // F: the speculative fetch pc.
  reg [31:0] pc_f;

  // F -> D latches.
  reg [31:0] d_pc;
  reg [31:0] d_instr;
  reg d_valid;
  reg d_pred_taken;
  reg [31:0] d_btag;

  // D -> X1 latches.
  reg e1_valid;
  reg e1_we;
  reg [2:0] e1_rd;
  reg [31:0] e1_alu;
  reg e1_is_ld;
  reg e1_is_st;
  reg [31:0] e1_mem_addr;
  reg [31:0] e1_st_val;
  reg [31:0] e1_pc;
  reg [31:0] e1_instr;
  reg [31:0] e1_next_pc;
  reg e1_is_br;
  reg e1_mispred;
  reg e1_taken;
  reg [31:0] e1_btag;
  reg e1_is_halt;

  // X1 -> X2 latches.
  reg e2_valid;
  reg e2_we;
  reg [2:0] e2_rd;
  reg [31:0] e2_result;
  reg e2_is_ld;
  reg e2_is_st;
  reg [31:0] e2_mem_addr;
  reg [31:0] e2_st_val;
  reg [31:0] e2_pc;
  reg [31:0] e2_instr;
  reg [31:0] e2_next_pc;
  reg e2_is_br;
  reg e2_mispred;
  reg e2_taken;
  reg [31:0] e2_btag;
  reg e2_is_halt;

  // Registered commit record: describes the instruction that committed
  // at the *last* clock edge, so the harness reads a stable snapshot.
  // repro-lint: waive dead-signal c_* commit record read by the harness via the trace
  reg c_valid;
  reg [31:0] c_pc;
  reg [31:0] c_word;
  reg [31:0] c_next_pc;
  reg c_we;
  reg [2:0] c_rd;
  reg [31:0] c_rd_val;
  reg c_ld;
  reg c_st;
  reg [31:0] c_mem_addr;
  reg [31:0] c_st_val;
  reg c_halt;
  reg c_mispred;

  // F-stage decode: predict branches, redirect JALs at fetch.
  wire [6:0] f_op;
  wire f_is_br;
  wire f_is_jal;
  wire [11:0] f_bimm_lo;
  wire [31:0] f_bimm;
  wire [19:0] f_jimm_lo;
  wire [31:0] f_jimm;
  wire [1:0] f_bht_ix;
  wire [1:0] f_bht;
  wire f_pred_taken;
  wire [31:0] f_next_pc;

  // D-stage decode.
  wire [6:0] d_op;
  wire [2:0] d_f3;
  wire [2:0] d_rd;
  wire [2:0] d_rs1;
  wire [2:0] d_rs2;
  wire [11:0] d_iimm_lo;
  wire [31:0] d_iimm;
  wire [11:0] d_simm_lo;
  wire [31:0] d_simm;
  wire [11:0] d_bimm_lo;
  wire [31:0] d_bimm;
  wire [19:0] d_jimm_lo;
  wire [31:0] d_jimm;
  wire d_is_br;
  wire d_is_jal;
  wire d_is_ld;
  wire d_is_st;
  wire d_is_imm;
  wire d_is_alu;
  wire d_is_halt;
  wire d_writes_rd;

  // Regfile read and bypass (X1 result wins over X2 over the file).
  wire [31:0] rf_rs1;
  wire [31:0] rf_rs2;
  wire [31:0] e1_fwd;
  wire [31:0] d_rs1_val;
  wire [31:0] d_rs2_val;

  // ALU, memory address, branch resolution.
  wire [31:0] d_opb;
  wire [31:0] d_sum;
  wire d_sub;
  wire [31:0] d_alu;
  wire [31:0] d_mem_addr;
  wire d_lt_signed;
  wire d_br_taken;
  wire d_mispred;
  wire [31:0] d_next_pc;
  wire d_probe;
  wire [1:0] e2_bht_ix;
  wire flush;

  assign x0 = 32'd0;

  assign f_op = instr[6:0];
  assign f_is_br = f_op == 7'h63;
  assign f_is_jal = f_op == 7'h6F;
  assign f_bimm_lo = {instr[7], instr[30:25], instr[11:8], 1'b0};
  assign f_bimm = (instr[31] ? 32'hFFFFF000 : 32'h0) | f_bimm_lo;
  assign f_jimm_lo = {instr[19:12], instr[20], instr[30:21], 1'b0};
  assign f_jimm = (instr[31] ? 32'hFFF00000 : 32'h0) | f_jimm_lo;
  assign f_bht_ix = pc_f[3:2];
  assign f_bht = f_bht_ix == 2'd0 ? bht0
               : f_bht_ix == 2'd1 ? bht1
               : f_bht_ix == 2'd2 ? bht2
               : bht3;
  assign f_pred_taken = f_is_br && f_bht[1];
  assign f_next_pc = f_is_jal ? pc_f + f_jimm
                   : f_pred_taken ? pc_f + f_bimm
                   : pc_f + 32'd4;

  assign d_op = d_instr[6:0];
  assign d_f3 = d_instr[14:12];
  assign d_rd = d_instr[9:7];
  assign d_rs1 = d_instr[17:15];
  assign d_rs2 = d_instr[22:20];
  assign d_iimm_lo = d_instr[31:20];
  assign d_iimm = (d_instr[31] ? 32'hFFFFF000 : 32'h0) | d_iimm_lo;
  assign d_simm_lo = {d_instr[31:25], d_instr[11:7]};
  assign d_simm = (d_instr[31] ? 32'hFFFFF000 : 32'h0) | d_simm_lo;
  assign d_bimm_lo = {d_instr[7], d_instr[30:25], d_instr[11:8], 1'b0};
  assign d_bimm = (d_instr[31] ? 32'hFFFFF000 : 32'h0) | d_bimm_lo;
  assign d_jimm_lo = {d_instr[19:12], d_instr[20], d_instr[30:21], 1'b0};
  assign d_jimm = (d_instr[31] ? 32'hFFF00000 : 32'h0) | d_jimm_lo;
  assign d_is_br = d_op == 7'h63;
  assign d_is_jal = d_op == 7'h6F;
  assign d_is_ld = (d_op == 7'h03) && (d_f3 == 3'd2);
  assign d_is_st = (d_op == 7'h23) && (d_f3 == 3'd2);
  assign d_is_imm = d_op == 7'h13;
  assign d_is_alu = d_op == 7'h33;
  assign d_is_halt = d_op == 7'h73;
  assign d_writes_rd = (d_is_imm || d_is_alu || d_is_ld || d_is_jal)
                       && (d_rd != 3'd0);

  assign rf_rs1 = d_rs1 == 3'd0 ? x0
                : d_rs1 == 3'd1 ? x1
                : d_rs1 == 3'd2 ? x2
                : d_rs1 == 3'd3 ? x3
                : d_rs1 == 3'd4 ? x4
                : d_rs1 == 3'd5 ? x5
                : d_rs1 == 3'd6 ? x6
                : x7;
  assign rf_rs2 = d_rs2 == 3'd0 ? x0
                : d_rs2 == 3'd1 ? x1
                : d_rs2 == 3'd2 ? x2
                : d_rs2 == 3'd3 ? x3
                : d_rs2 == 3'd4 ? x4
                : d_rs2 == 3'd5 ? x5
                : d_rs2 == 3'd6 ? x6
                : x7;
  assign e1_fwd = e1_is_ld ? dmem_rdata : e1_alu;
  assign d_rs1_val = (e1_we && (e1_rd == d_rs1)) ? e1_fwd
                   : (e2_we && (e2_rd == d_rs1)) ? e2_result
                   : rf_rs1;
  assign d_rs2_val = (e1_we && (e1_rd == d_rs2)) ? e1_fwd
                   : (e2_we && (e2_rd == d_rs2)) ? e2_result
                   : rf_rs2;

  assign d_opb = d_is_imm ? d_iimm : d_rs2_val;
  assign d_sum = d_rs1_val + d_opb;
  assign d_sub = d_is_alu && d_instr[30];
  assign d_alu = d_is_jal ? d_pc + 32'd4
               : d_f3 == 3'd0 ? (d_sub ? d_rs1_val - d_opb : d_sum)
               : d_f3 == 3'd4 ? (d_rs1_val ^ d_opb)
               : d_f3 == 3'd6 ? (d_rs1_val | d_opb)
               : d_f3 == 3'd7 ? (d_rs1_val & d_opb)
               : d_sum;
  assign d_mem_addr = d_rs1_val + (d_is_st ? d_simm : d_iimm);
  assign d_lt_signed = (d_rs1_val ^ 32'h80000000) < (d_rs2_val ^ 32'h80000000);
  assign d_br_taken = d_is_br && (d_f3 == 3'd0 ? (d_rs1_val == d_rs2_val)
                    : d_f3 == 3'd1 ? (d_rs1_val != d_rs2_val)
                    : d_f3 == 3'd4 ? d_lt_signed
                    : d_f3 == 3'd5 ? !d_lt_signed
                    : 1'b0);
  assign d_mispred = d_valid && d_is_br && (d_br_taken != d_pred_taken);
  assign d_next_pc = d_is_jal ? d_pc + d_jimm
                   : (d_is_br && d_br_taken) ? d_pc + d_bimm
                   : d_pc + 32'd4;
  assign d_probe = d_valid && d_is_ld;
  assign e2_bht_ix = e2_pc[3:2];
  assign flush = e2_valid && e2_is_br && e2_mispred;

  always @(posedge clk) begin
    // F -> D (killed by a same-edge flush).
    d_pc <= pc_f;
    d_instr <= instr;
    d_valid <= !flush;
    d_pred_taken <= f_pred_taken && !flush;
    if (f_is_br && !flush) begin
      w_disp_pc <= pc_f;
      w_disp_word <= instr;
      w_disp_tag <= w_disp_tag + 32'd1;
    end
    d_btag <= (f_is_br && !flush) ? w_disp_tag + 32'd1 : 32'd0;
    pc_f <= flush ? e2_next_pc : f_next_pc;

    // D -> X1.
    e1_valid <= d_valid && !flush;
    e1_we <= d_valid && !flush && d_writes_rd;
    e1_rd <= d_rd;
    e1_alu <= d_alu;
    e1_is_ld <= d_valid && !flush && d_is_ld;
    e1_is_st <= d_valid && !flush && d_is_st;
    e1_mem_addr <= d_mem_addr;
    e1_st_val <= d_rs2_val;
    e1_pc <= d_pc;
    e1_instr <= d_instr;
    e1_next_pc <= d_next_pc;
    e1_is_br <= d_valid && !flush && d_is_br;
    e1_mispred <= d_mispred && !flush;
    e1_taken <= d_br_taken;
    e1_btag <= d_btag;
    e1_is_halt <= d_valid && !flush && d_is_halt;

    // X1 -> X2.
    e2_valid <= e1_valid && !flush;
    e2_we <= e1_we && !flush;
    e2_rd <= e1_rd;
    e2_result <= e1_is_ld ? dmem_rdata : e1_alu;
    e2_is_ld <= e1_is_ld && !flush;
    e2_is_st <= e1_is_st && !flush;
    e2_mem_addr <= e1_mem_addr;
    e2_st_val <= e1_st_val;
    e2_pc <= e1_pc;
    e2_instr <= e1_instr;
    e2_next_pc <= e1_next_pc;
    e2_is_br <= e1_is_br && !flush;
    e2_mispred <= e1_mispred;
    e2_taken <= e1_taken;
    e2_btag <= e1_btag;
    e2_is_halt <= e1_is_halt && !flush;

    // X2: commit.  Whatever is valid here is past the flush point.
    if (e2_valid) begin
      pc <= e2_next_pc;
      if (e2_we)
        if (e2_rd == 3'd1) x1 <= e2_result;
        else if (e2_rd == 3'd2) x2 <= e2_result;
        else if (e2_rd == 3'd3) x3 <= e2_result;
        else if (e2_rd == 3'd4) x4 <= e2_result;
        else if (e2_rd == 3'd5) x5 <= e2_result;
        else if (e2_rd == 3'd6) x6 <= e2_result;
        else x7 <= e2_result;
    end

    // Branch resolution strobes + predictor training.
    if (e2_valid && e2_is_br) begin
      w_res_mispredict <= e2_mispred;
      w_res_tag <= e2_btag;
      if (e2_bht_ix == 2'd0)
        bht0 <= e2_taken ? (bht0 == 2'd3 ? 2'd3 : bht0 + 2'd1)
                         : (bht0 == 2'd0 ? 2'd0 : bht0 - 2'd1);
      else if (e2_bht_ix == 2'd1)
        bht1 <= e2_taken ? (bht1 == 2'd3 ? 2'd3 : bht1 + 2'd1)
                         : (bht1 == 2'd0 ? 2'd0 : bht1 - 2'd1);
      else if (e2_bht_ix == 2'd2)
        bht2 <= e2_taken ? (bht2 == 2'd3 ? 2'd3 : bht2 + 2'd1)
                         : (bht2 == 2'd0 ? 2'd0 : bht2 - 2'd1);
      else
        bht3 <= e2_taken ? (bht3 == 2'd3 ? 2'd3 : bht3 + 2'd1)
                         : (bht3 == 2'd0 ? 2'd0 : bht3 - 2'd1);
    end

    // Commit record for the harness.
    c_valid <= e2_valid;
    c_halt <= e2_valid && e2_is_halt;
    c_mispred <= e2_valid && e2_is_br && e2_mispred;
    if (e2_valid) begin
      c_pc <= e2_pc;
      c_word <= e2_instr;
      c_next_pc <= e2_next_pc;
      c_we <= e2_we;
      c_rd <= e2_rd;
      c_rd_val <= e2_result;
      c_ld <= e2_is_ld;
      c_st <= e2_is_st;
      c_mem_addr <= e2_mem_addr;
      c_st_val <= e2_st_val;
    end
  end

  dcache dcache (.clk(clk), .probe(d_probe), .addr(d_mem_addr));
endmodule
"""

#: Assembler for the streaming CPU: mnemonic -> opcode.
CPU_OPS = {"nop": 0, "ldi": 1, "add": 2, "xor": 3, "st": 4, "shl": 5}


def cpu_assemble(program: list[tuple[str, int]]) -> list[int]:
    """Assemble ``[(mnemonic, arg), ...]`` into instruction bytes."""
    words = []
    for mnemonic, arg in program:
        opcode = CPU_OPS[mnemonic.lower()]
        if not 0 <= arg < 32:
            raise ValueError(f"arg out of range: {arg}")
        words.append((opcode << 5) | arg)
    return words
