"""Reference Verilog designs written in the supported subset.

* :data:`LISTING_1` — the paper's §3.1 example, verbatim.
* :data:`PIPELINE_CPU` — a three-stage, accumulator-style streaming CPU
  used as a *second processor-under-test* for the Verilog route: it is
  parsed, elaborated, simulated cycle-by-cycle with
  :class:`~repro.rtl.sim.RtlSimulator`, and fed to the offline phase,
  demonstrating that Specure's front half is genuinely
  hardware-agnostic (it never sees the Python core model).

The streaming CPU's ISA (instructions arrive on ``instr`` each cycle,
8 bits: ``op[7:5] | arg[4:0]``):

    op 0  NOP
    op 1  LDI  — acc <= arg (zero-extended)
    op 2  ADD  — acc <= acc + r[arg[1:0]]
    op 3  XOR  — acc <= acc ^ r[arg[1:0]]
    op 4  ST   — r[arg[1:0]] <= acc
    op 5  SHL  — acc <= acc << 1

Three pipeline stages (fetch-latch, decode, execute) mean an
instruction's effect lands two cycles after it is presented; the
pipeline latches are the microarchitectural registers, the accumulator
and the register file are the architectural surface.
"""

LISTING_1 = """
module D_FF(input d, input clk, output q);
  reg q;
  always @(posedge clk)
    q <= d;
endmodule
module top(input clk, input i, output o);
  reg q1;
  D_FF df1 (.d(i), .clk(clk), .q(q1));
  D_FF df2 (.d(q1), .clk(clk), .q(o));
endmodule
"""

PIPELINE_CPU = """
// Three-stage streaming accumulator CPU (subset Verilog).
module regfile(input clk, input we, input [1:0] waddr,
               input [7:0] wdata, input [1:0] raddr,
               output [7:0] rdata,
               output [7:0] r0_q, output [7:0] r1_q,
               output [7:0] r2_q, output [7:0] r3_q);
  reg [7:0] r0;
  reg [7:0] r1;
  reg [7:0] r2;
  reg [7:0] r3;
  assign rdata = raddr == 2'd0 ? r0
               : raddr == 2'd1 ? r1
               : raddr == 2'd2 ? r2
               : r3;
  assign r0_q = r0;
  assign r1_q = r1;
  assign r2_q = r2;
  assign r3_q = r3;
  always @(posedge clk)
    if (we)
      if (waddr == 2'd0) r0 <= wdata;
      else if (waddr == 2'd1) r1 <= wdata;
      else if (waddr == 2'd2) r2 <= wdata;
      else r3 <= wdata;
endmodule

module alu(input [2:0] op, input [7:0] acc_in, input [7:0] operand,
           input [4:0] arg, output [7:0] result);
  assign result = op == 3'd1 ? {3'b000, arg}
                : op == 3'd2 ? acc_in + operand
                : op == 3'd3 ? acc_in ^ operand
                : op == 3'd5 ? acc_in << 1
                : acc_in;
endmodule

module cpu(input clk, input [7:0] instr, output [7:0] acc_out);
  // Stage 1: fetch latch.
  reg [7:0] instr_f;
  // Stage 2: decode latches.
  reg [2:0] op_d;
  reg [4:0] arg_d;
  // Architectural accumulator.
  reg [7:0] acc;

  wire [2:0] op_w;
  wire [4:0] arg_w;
  wire [7:0] operand;
  wire [7:0] alu_out;
  wire we;
  wire [7:0] r0_q;
  wire [7:0] r1_q;
  wire [7:0] r2_q;
  wire [7:0] r3_q;

  assign op_w = instr_f[7:5];
  assign arg_w = instr_f[4:0];
  assign we = op_d == 3'd4;
  assign acc_out = acc;

  regfile rf (.clk(clk), .we(we), .waddr(arg_d[1:0]), .wdata(acc),
              .raddr(arg_d[1:0]), .rdata(operand),
              .r0_q(r0_q), .r1_q(r1_q), .r2_q(r2_q), .r3_q(r3_q));
  alu ex (.op(op_d), .acc_in(acc), .operand(operand), .arg(arg_d),
          .result(alu_out));

  always @(posedge clk) begin
    instr_f <= instr;
    op_d <= op_w;
    arg_d <= arg_w;
    if (op_d != 3'd0)
      if (op_d != 3'd4)
        acc <= alu_out;
  end
endmodule
"""

#: Assembler for the streaming CPU: mnemonic -> opcode.
CPU_OPS = {"nop": 0, "ldi": 1, "add": 2, "xor": 3, "st": 4, "shl": 5}


def cpu_assemble(program: list[tuple[str, int]]) -> list[int]:
    """Assemble ``[(mnemonic, arg), ...]`` into instruction bytes."""
    words = []
    for mnemonic, arg in program:
        opcode = CPU_OPS[mnemonic.lower()]
        if not 0 <= arg < 32:
            raise ValueError(f"arg out of range: {arg}")
        words.append((opcode << 5) | arg)
    return words
