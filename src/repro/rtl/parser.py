"""Recursive-descent parser for the Verilog subset.

Produces the AST of :mod:`repro.rtl.ast`.  The grammar covers ANSI-style
and classic port declarations, net declarations with ranges, continuous
assigns, ``always @(posedge clk)`` processes with non-blocking
assignments, and module instances with named port connections — enough to
parse the paper's Listing 1 verbatim and small pipelined designs written
in the same style.
"""

from __future__ import annotations

from repro.rtl import ast
from repro.rtl.lexer import Lexer, Token, TokenKind


class ParseError(ValueError):
    """Syntax error with line context."""


def parse(text: str) -> ast.Source:
    """Parse Verilog source text into an AST."""
    return _Parser(Lexer(text).tokenize()).parse_source()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind in (
            TokenKind.PUNCT, TokenKind.KEYWORD,
        )

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            token = self._peek()
            raise ParseError(
                f"line {token.line}: expected {text!r}, got {token.text!r}"
            )
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"line {token.line}: expected identifier, got {token.text!r}"
            )
        return self._advance().text

    def _expect_number(self) -> int:
        token = self._peek()
        if token.kind is not TokenKind.NUMBER:
            raise ParseError(f"line {token.line}: expected number, got {token.text!r}")
        self._advance()
        return token.value

    # -- grammar --------------------------------------------------------

    def parse_source(self) -> ast.Source:
        source = ast.Source()
        while self._peek().kind is not TokenKind.EOF:
            source.modules.append(self._parse_module())
        return source

    def _parse_module(self) -> ast.Module:
        self._expect("module")
        module = ast.Module(name=self._expect_ident())
        if self._accept("("):
            self._parse_port_list(module)
            self._expect(")")
        self._expect(";")
        while not self._accept("endmodule"):
            self._parse_item(module)
        return module

    def _parse_port_list(self, module: ast.Module) -> None:
        if self._check(")"):
            return
        while True:
            if self._check("input") or self._check("output"):
                module.ports.append(self._parse_ansi_port())
            else:
                # Classic style: just names; directions declared in items.
                module.ports.append(ast.PortDecl("input", self._expect_ident()))
                module.ports[-1] = ast.PortDecl(
                    "__undeclared__", module.ports[-1].name
                )
            if not self._accept(","):
                return

    def _parse_ansi_port(self) -> ast.PortDecl:
        direction = self._advance().text
        is_reg = self._accept("reg")
        width = self._parse_optional_range()
        name = self._expect_ident()
        return ast.PortDecl(direction, name, width, is_reg)

    def _parse_optional_range(self) -> int:
        if not self._accept("["):
            return 1
        msb = self._expect_number()
        self._expect(":")
        lsb = self._expect_number()
        self._expect("]")
        if msb < lsb:
            raise ParseError(f"descending range [{msb}:{lsb}] not supported")
        return msb - lsb + 1

    def _parse_item(self, module: ast.Module) -> None:
        token = self._peek()
        if token.kind is TokenKind.EOF:
            raise ParseError("unexpected end of file inside module")
        if token.text in ("input", "output"):
            self._parse_port_item(module)
        elif token.text in ("wire", "reg"):
            self._parse_net_item(module)
        elif token.text == "assign":
            self._parse_assign(module)
        elif token.text == "always":
            self._parse_always(module)
        elif token.kind is TokenKind.IDENT:
            self._parse_instance(module)
        else:
            raise ParseError(
                f"line {token.line}: unexpected token {token.text!r} in module body"
            )

    def _parse_port_item(self, module: ast.Module) -> None:
        direction = self._advance().text
        is_reg = self._accept("reg")
        width = self._parse_optional_range()
        names = [self._expect_ident()]
        while self._accept(","):
            names.append(self._expect_ident())
        self._expect(";")
        for name in names:
            self._apply_port_direction(module, direction, name, width, is_reg)

    def _apply_port_direction(self, module, direction, name, width, is_reg) -> None:
        for index, port in enumerate(module.ports):
            if port.name == name:
                module.ports[index] = ast.PortDecl(direction, name, width, is_reg)
                return
        # Port declared only in the body (tolerated): append it.
        module.ports.append(ast.PortDecl(direction, name, width, is_reg))

    def _parse_net_item(self, module: ast.Module) -> None:
        kind = self._advance().text
        width = self._parse_optional_range()
        names = [self._expect_ident()]
        while self._accept(","):
            names.append(self._expect_ident())
        self._expect(";")
        for name in names:
            # ``reg q;`` re-declaring an output port marks the port reg.
            matched = False
            for index, port in enumerate(module.ports):
                if port.name == name and kind == "reg":
                    module.ports[index] = ast.PortDecl(
                        port.direction, name, max(port.width, width), True
                    )
                    matched = True
                    break
            if not matched:
                module.nets.append(ast.NetDecl(kind, name, width))

    def _parse_assign(self, module: ast.Module) -> None:
        self._expect("assign")
        target = self._expect_ident()
        self._expect("=")
        value = self._parse_expression()
        self._expect(";")
        module.assigns.append(ast.ContAssign(target, value))

    def _parse_always(self, module: ast.Module) -> None:
        self._expect("always")
        self._expect("@")
        self._expect("(")
        self._expect("posedge")
        clock = self._expect_ident()
        self._expect(")")
        body = self._parse_statement()
        module.always_blocks.append(ast.AlwaysFF(clock, body))

    def _parse_statement(self) -> ast.Statement:
        if self._accept("begin"):
            statements = []
            while not self._accept("end"):
                statements.append(self._parse_statement())
            return ast.Block(tuple(statements))
        if self._accept("if"):
            self._expect("(")
            condition = self._parse_expression()
            self._expect(")")
            then_body = self._parse_statement()
            else_body = self._parse_statement() if self._accept("else") else None
            return ast.If(condition, then_body, else_body)
        target = self._expect_ident()
        self._expect("<=")
        value = self._parse_expression()
        self._expect(";")
        return ast.NonBlocking(target, value)

    def _parse_instance(self, module: ast.Module) -> None:
        module_name = self._expect_ident()
        instance_name = self._expect_ident()
        self._expect("(")
        connections = []
        if not self._check(")"):
            while True:
                self._expect(".")
                port = self._expect_ident()
                self._expect("(")
                expr = self._parse_expression()
                self._expect(")")
                connections.append((port, expr))
                if not self._accept(","):
                    break
        self._expect(")")
        self._expect(";")
        module.instances.append(
            ast.Instance(module_name, instance_name, tuple(connections))
        )

    # -- expressions (precedence climbing) -------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._accept("?"):
            if_true = self._parse_expression()
            self._expect(":")
            if_false = self._parse_expression()
            return ast.Ternary(condition, if_true, if_false)
        return condition

    _PRECEDENCE: tuple[tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        operators = self._PRECEDENCE[level]
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in operators:
            op = self._advance().text
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in ("~", "!", "-", "&", "|", "^"):
            op = self._advance().text
            return ast.UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Number(token.value, token.width)
        if self._accept("("):
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if self._accept("{"):
            parts = [self._parse_expression()]
            while self._accept(","):
                parts.append(self._parse_expression())
            self._expect("}")
            return ast.Concat(tuple(parts))
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            base = ast.Identifier(name)
            if self._accept("["):
                first = self._parse_expression()
                if self._accept(":"):
                    if not isinstance(first, ast.Number):
                        raise ParseError(
                            f"line {token.line}: part-select bounds must be constant"
                        )
                    lsb = self._expect_number()
                    self._expect("]")
                    return ast.PartSelect(base, first.value, lsb)
                self._expect("]")
                return ast.BitSelect(base, first)
            return base
        raise ParseError(f"line {token.line}: unexpected token {token.text!r}")
