"""RTL frontend: Verilog-subset parsing, elaboration, netlists, simulation.

This package is the reproduction's stand-in for the paper's Pyverilog +
commercial-simulator stack:

* :mod:`repro.rtl.lexer` / :mod:`repro.rtl.parser` / :mod:`repro.rtl.ast`
  parse a synthesizable Verilog-2001 subset (the paper's Listing 1 parses
  verbatim) into an AST;
* :mod:`repro.rtl.elaborate` flattens a module hierarchy into an
  :class:`~repro.rtl.ir.ElaboratedDesign` with hierarchical signal names
  (``top.df1.q``) exactly as the paper's IFG example names them;
* :mod:`repro.rtl.netlist` is the programmatic route to the same IR, used
  by the BOOM-like core model to declare its registers and flow edges;
* :mod:`repro.rtl.sim` simulates elaborated designs cycle by cycle;
* :mod:`repro.rtl.trace` holds change-event traces (VCD-style) shared by
  the RTL simulator and the core model — the "snapshots" of the paper's
  Microarchitecture Visualizer are reconstructed from these.
"""

from repro.rtl.trace import ChangeEvent, SignalTrace
from repro.rtl.ir import ElaboratedDesign, Signal, SignalKind
from repro.rtl.lexer import Lexer, Token, TokenKind, LexError
from repro.rtl.parser import parse, ParseError
from repro.rtl.elaborate import elaborate, ElaborationError
from repro.rtl.netlist import Netlist
from repro.rtl.writer import write_verilog
from repro.rtl.sim import RtlSimulator, SimulationError

__all__ = [
    "ChangeEvent",
    "SignalTrace",
    "ElaboratedDesign",
    "Signal",
    "SignalKind",
    "Lexer",
    "Token",
    "TokenKind",
    "LexError",
    "parse",
    "ParseError",
    "elaborate",
    "ElaborationError",
    "Netlist",
    "write_verilog",
    "RtlSimulator",
    "SimulationError",
]
