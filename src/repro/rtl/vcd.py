"""VCD (Value Change Dump) export of signal traces.

The paper's Microarchitecture Visualizer extracts "waveforms that show
PUT's signal values for each simulation clock cycle"; a
:class:`~repro.rtl.trace.SignalTrace` *is* that waveform in memory, and
this module serialises it to standard VCD so any waveform viewer
(GTKWave etc.) can inspect a fuzzing run — invaluable when triaging a
root-cause report by eye.

Hierarchical dotted names become nested ``$scope`` modules; widths are
taken from an optional width map (64 by default).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.rtl.trace import SignalTrace

_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for signal ``index`` (base-94 encoding)."""
    if index < 0:
        raise ValueError("negative signal index")
    digits = []
    while True:
        index, rem = divmod(index, len(_ID_ALPHABET))
        digits.append(_ID_ALPHABET[rem])
        if index == 0:
            return "".join(reversed(digits))
        index -= 1  # bijective numeration: no leading-zero ambiguity


def _scope_tree(names: list[str]) -> dict:
    """Nest dotted names into a scope tree: {scope: subtree, ...}.

    Leaves map to their signal index (int); inner nodes map to dicts.
    """
    root: dict = {}
    for index, name in enumerate(names):
        parts = name.split(".")
        node = root
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise ValueError(f"signal {name!r} nests under a leaf")
        leaf = parts[-1]
        if leaf in node:
            raise ValueError(f"duplicate VCD leaf {name!r}")
        node[leaf] = index
    return root


def write_vcd(
    trace: SignalTrace,
    widths: Mapping[str, int] | None = None,
    timescale: str = "1 ns",
    comment: str = "repro.rtl.vcd export",
) -> str:
    """Serialise a trace to VCD text (one timestep per clock cycle)."""
    widths = widths or {}
    lines = [
        f"$comment {comment} $end",
        f"$timescale {timescale} $end",
    ]

    def width_of(name: str) -> int:
        return widths.get(name, 64)

    def emit_scope(node: dict, depth: int) -> None:
        pad = "  " * depth
        for key in node:
            child = node[key]
            if isinstance(child, dict):
                lines.append(f"{pad}$scope module {key} $end")
                emit_scope(child, depth + 1)
                lines.append(f"{pad}$upscope $end")
            else:
                name = trace.signal_names[child]
                lines.append(
                    f"{pad}$var wire {width_of(name)} "
                    f"{_identifier(child)} {key} $end"
                )

    emit_scope(_scope_tree(trace.signal_names), 0)
    lines.append("$enddefinitions $end")

    lines.append("$dumpvars")
    for index, value in enumerate(trace.initial):
        lines.append(f"b{value:b} {_identifier(index)}")
    lines.append("$end")

    current_cycle = None
    for event in trace.events:
        if event.cycle != current_cycle:
            current_cycle = event.cycle
            lines.append(f"#{event.cycle}")
        lines.append(f"b{event.new:b} {_identifier(event.signal)}")
    if trace.final_cycle >= 0 and trace.final_cycle != current_cycle:
        lines.append(f"#{trace.final_cycle}")
    return "\n".join(lines) + "\n"


def parse_vcd_values(text: str) -> dict[str, list[tuple[int, int]]]:
    """Minimal VCD reader: per-signal (time, value) change lists.

    Supports exactly the subset :func:`write_vcd` emits; used by the
    round-trip tests and handy for quick programmatic inspection.
    """
    id_to_name: dict[str, str] = {}
    scopes: list[str] = []
    changes: dict[str, list[tuple[int, int]]] = {}
    time = 0
    in_definitions = True
    in_dump = False  # inside $dumpvars..$end: initial values, not changes
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$scope"):
                scopes.append(line.split()[2])
            elif line.startswith("$upscope"):
                scopes.pop()
            elif line.startswith("$var"):
                parts = line.split()
                identifier, leaf = parts[3], parts[4]
                full = ".".join(scopes + [leaf])
                id_to_name[identifier] = full
                changes[full] = []
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("$dumpvars"):
            in_dump = True
        elif line.startswith("$end"):
            in_dump = False
        elif line.startswith("#"):
            time = int(line[1:])
        elif line.startswith("b") and not in_dump:
            value_text, identifier = line[1:].split()
            name = id_to_name[identifier]
            changes[name].append((time, int(value_text, 2)))
    return changes
