"""Elaboration: AST module hierarchy -> flat :class:`ElaboratedDesign`.

Performs hierarchical instantiation with fully-qualified signal names
(``top.df1.q``), rewrites every expression and statement to reference
qualified names, and records port connections as distinct assign kinds so
the IFG builder can emit the paper's connection edges exactly.
"""

from __future__ import annotations

from repro.rtl import ast
from repro.rtl.ir import (
    ASSIGN_COMB,
    ASSIGN_CONN_IN,
    ASSIGN_CONN_OUT,
    ElabAssign,
    ElabFF,
    ElaboratedDesign,
    Signal,
    SignalKind,
)


class ElaborationError(ValueError):
    """Structural error: unknown module, undeclared port, bad connection."""


def elaborate(source: ast.Source, top: str | None = None) -> ElaboratedDesign:
    """Elaborate ``source`` with ``top`` (default: last module) as root.

    The root instance is named after its module, matching the paper's
    ``top.*`` naming in the Listing 1 walkthrough.
    """
    if not source.modules:
        raise ElaborationError("no modules in source")
    modules = {module.name: module for module in source.modules}
    top_module = source.modules[-1] if top is None else None
    if top_module is None:
        if top not in modules:
            raise ElaborationError(f"top module {top!r} not found")
        top_module = modules[top]
    design = ElaboratedDesign(top=top_module.name)
    _instantiate(modules, top_module, top_module.name, depth=0, design=design)
    return design


def _instantiate(
    modules: dict[str, ast.Module],
    module: ast.Module,
    prefix: str,
    depth: int,
    design: ElaboratedDesign,
) -> None:
    # Declare port and net signals.
    for port in module.ports:
        if port.direction == "__undeclared__":
            raise ElaborationError(
                f"{prefix}: port {port.name!r} has no direction declaration"
            )
        kind = SignalKind.INPUT if port.direction == "input" else SignalKind.OUTPUT
        design.add_signal(
            Signal(f"{prefix}.{port.name}", port.width, kind, depth=depth)
        )
    for net in module.nets:
        kind = SignalKind.REG if net.kind == "reg" else SignalKind.WIRE
        design.add_signal(Signal(f"{prefix}.{net.name}", net.width, kind, depth=depth))

    # Continuous assigns.
    for item in module.assigns:
        target = f"{prefix}.{item.target}"
        _require_signal(design, target, prefix)
        design.assigns.append(
            ElabAssign(target, _qualify_expr(item.value, prefix, design), ASSIGN_COMB)
        )

    # Flip-flop processes.
    for block in module.always_blocks:
        clock = f"{prefix}.{block.clock}"
        _require_signal(design, clock, prefix)
        body = _qualify_statement(block.body, prefix, design)
        design.ffs.append(ElabFF(clock, body))

    # Sub-instances.
    for instance in module.instances:
        child = modules.get(instance.module_name)
        if child is None:
            raise ElaborationError(
                f"{prefix}: unknown module {instance.module_name!r} "
                f"(instance {instance.instance_name!r})"
            )
        child_prefix = f"{prefix}.{instance.instance_name}"
        _instantiate(modules, child, child_prefix, depth + 1, design)
        for port_name, expr in instance.connections:
            try:
                port = child.port(port_name)
            except KeyError:
                raise ElaborationError(
                    f"{child_prefix}: module {child.name!r} has no port {port_name!r}"
                ) from None
            child_signal = f"{child_prefix}.{port_name}"
            if port.direction == "input":
                design.assigns.append(
                    ElabAssign(
                        child_signal,
                        _qualify_expr(expr, prefix, design),
                        ASSIGN_CONN_IN,
                    )
                )
            else:
                if not isinstance(expr, ast.Identifier):
                    raise ElaborationError(
                        f"{child_prefix}: output port {port_name!r} must connect "
                        f"to a plain identifier"
                    )
                parent_signal = f"{prefix}.{expr.name}"
                _require_signal(design, parent_signal, prefix)
                design.assigns.append(
                    ElabAssign(
                        parent_signal,
                        ast.Identifier(child_signal),
                        ASSIGN_CONN_OUT,
                    )
                )

    # Mark flip-flop targets as state (after all FFs of this module added).
    for target in design.ff_targets():
        if target in design.signals:
            design.signals[target].is_state = True


def _require_signal(design: ElaboratedDesign, name: str, prefix: str) -> None:
    if name not in design.signals:
        raise ElaborationError(f"{prefix}: reference to undeclared signal {name!r}")


def _qualify_expr(expr: ast.Expr, prefix: str, design: ElaboratedDesign) -> ast.Expr:
    """Rewrite identifiers to fully-qualified names, checking existence."""
    if isinstance(expr, ast.Identifier):
        name = f"{prefix}.{expr.name}"
        _require_signal(design, name, prefix)
        return ast.Identifier(name)
    if isinstance(expr, ast.Number):
        return expr
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _qualify_expr(expr.operand, prefix, design))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _qualify_expr(expr.left, prefix, design),
            _qualify_expr(expr.right, prefix, design),
        )
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            _qualify_expr(expr.condition, prefix, design),
            _qualify_expr(expr.if_true, prefix, design),
            _qualify_expr(expr.if_false, prefix, design),
        )
    if isinstance(expr, ast.BitSelect):
        base = _qualify_expr(expr.base, prefix, design)
        return ast.BitSelect(base, _qualify_expr(expr.index, prefix, design))
    if isinstance(expr, ast.PartSelect):
        base = _qualify_expr(expr.base, prefix, design)
        return ast.PartSelect(base, expr.msb, expr.lsb)
    if isinstance(expr, ast.Concat):
        return ast.Concat(
            tuple(_qualify_expr(part, prefix, design) for part in expr.parts)
        )
    raise ElaborationError(f"unsupported expression node {type(expr).__name__}")


def _qualify_statement(
    statement: ast.Statement, prefix: str, design: ElaboratedDesign
) -> ast.Statement:
    if isinstance(statement, ast.NonBlocking):
        target = f"{prefix}.{statement.target}"
        _require_signal(design, target, prefix)
        return ast.NonBlocking(target, _qualify_expr(statement.value, prefix, design))
    if isinstance(statement, ast.If):
        return ast.If(
            _qualify_expr(statement.condition, prefix, design),
            _qualify_statement(statement.then_body, prefix, design),
            None
            if statement.else_body is None
            else _qualify_statement(statement.else_body, prefix, design),
        )
    if isinstance(statement, ast.Block):
        return ast.Block(
            tuple(
                _qualify_statement(child, prefix, design)
                for child in statement.statements
            )
        )
    raise ElaborationError(f"unsupported statement node {type(statement).__name__}")
