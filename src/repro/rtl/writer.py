"""Emit Verilog text from the AST (the inverse of the parser).

Used to round-trip designs in tests (parse → write → parse must be
structurally identical) and to export programmatically built modules for
inspection.
"""

from __future__ import annotations

from repro.rtl import ast

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}


def write_verilog(source: ast.Source) -> str:
    """Render all modules of a source back to Verilog text."""
    return "\n".join(_write_module(module) for module in source.modules)


def _write_module(module: ast.Module) -> str:
    lines = []
    ports = ", ".join(_port_header(p) for p in module.ports)
    lines.append(f"module {module.name}({ports});")
    for net in module.nets:
        lines.append(f"  {net.kind}{_range(net.width)} {net.name};")
    for item in module.assigns:
        lines.append(f"  assign {item.target} = {_expr(item.value)};")
    for block in module.always_blocks:
        lines.append(f"  always @(posedge {block.clock})")
        lines.extend(_statement(block.body, indent=4))
    for instance in module.instances:
        conns = ", ".join(
            f".{port}({_expr(expr)})" for port, expr in instance.connections
        )
        lines.append(f"  {instance.module_name} {instance.instance_name} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines)


def _port_header(port: ast.PortDecl) -> str:
    reg = " reg" if port.is_reg else ""
    return f"{port.direction}{reg}{_range(port.width)} {port.name}"


def _range(width: int) -> str:
    return "" if width == 1 else f" [{width - 1}:0]"


def _statement(statement: ast.Statement, indent: int) -> list[str]:
    pad = " " * indent
    if isinstance(statement, ast.NonBlocking):
        return [f"{pad}{statement.target} <= {_expr(statement.value)};"]
    if isinstance(statement, ast.If):
        lines = [f"{pad}if ({_expr(statement.condition)})"]
        lines.extend(_statement(statement.then_body, indent + 2))
        if statement.else_body is not None:
            lines.append(f"{pad}else")
            lines.extend(_statement(statement.else_body, indent + 2))
        return lines
    if isinstance(statement, ast.Block):
        lines = [f"{pad}begin"]
        for child in statement.statements:
            lines.extend(_statement(child, indent + 2))
        lines.append(f"{pad}end")
        return lines
    raise TypeError(f"unsupported statement {type(statement).__name__}")


def _expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Number):
        if expr.width is not None:
            return f"{expr.width}'h{expr.value:X}"
        return str(expr.value)
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{_expr(expr.operand, 99)}"
    if isinstance(expr, ast.BinaryOp):
        prec = _PRECEDENCE[expr.op]
        text = f"{_expr(expr.left, prec)} {expr.op} {_expr(expr.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.Ternary):
        text = (
            f"{_expr(expr.condition, 1)} ? {_expr(expr.if_true)} "
            f": {_expr(expr.if_false)}"
        )
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ast.BitSelect):
        return f"{expr.base.name}[{_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return f"{expr.base.name}[{expr.msb}:{expr.lsb}]"
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(_expr(part) for part in expr.parts) + "}"
    raise TypeError(f"unsupported expression {type(expr).__name__}")
