"""AST node definitions for the supported Verilog-2001 subset.

The subset is what synthesizable processor RTL in the paper's Listing 1
style needs: modules with ANSI or classic port declarations, ``wire`` /
``reg`` declarations with ranges, continuous ``assign``, a single
``always @(posedge clk)`` process style with non-blocking assignments and
``if``/``else``/``begin``-``end``, module instances with named port
connections, and the usual operators and sized literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Identifier(Expr):
    name: str


@dataclass(frozen=True)
class Number(Expr):
    value: int
    width: int | None = None  # None = unsized literal


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # ~ ! - & | ^ (reduction forms included)
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # + - * & | ^ << >> == != < <= > >= && ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class BitSelect(Expr):
    base: Identifier
    index: Expr


@dataclass(frozen=True)
class PartSelect(Expr):
    base: Identifier
    msb: int
    lsb: int


@dataclass(frozen=True)
class Concat(Expr):
    parts: tuple[Expr, ...]


# ----------------------------------------------------------------------
# Statements (inside always blocks)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class for procedural statements."""


@dataclass(frozen=True)
class NonBlocking(Statement):
    target: str
    value: Expr


@dataclass(frozen=True)
class If(Statement):
    condition: Expr
    then_body: "Statement"
    else_body: "Statement | None" = None


@dataclass(frozen=True)
class Block(Statement):
    statements: tuple[Statement, ...]


# ----------------------------------------------------------------------
# Module items
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PortDecl:
    """A port: direction in {'input', 'output'}, optional reg, width."""

    direction: str
    name: str
    width: int = 1
    is_reg: bool = False


@dataclass(frozen=True)
class NetDecl:
    """A ``wire`` or ``reg`` declaration."""

    kind: str  # 'wire' | 'reg'
    name: str
    width: int = 1


@dataclass(frozen=True)
class ContAssign:
    """Continuous assignment: ``assign target = expr;``"""

    target: str
    value: Expr


@dataclass(frozen=True)
class AlwaysFF:
    """``always @(posedge clock) body`` — the one supported process form."""

    clock: str
    body: Statement


@dataclass(frozen=True)
class Instance:
    """Module instantiation with named port connections."""

    module_name: str
    instance_name: str
    connections: tuple[tuple[str, Expr], ...]  # (port, expression)


@dataclass
class Module:
    name: str
    ports: list[PortDecl] = field(default_factory=list)
    nets: list[NetDecl] = field(default_factory=list)
    assigns: list[ContAssign] = field(default_factory=list)
    always_blocks: list[AlwaysFF] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)

    def port(self, name: str) -> PortDecl:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"module {self.name} has no port {name!r}")


@dataclass
class Source:
    """A parsed source file: the list of modules, in declaration order."""

    modules: list[Module] = field(default_factory=list)

    def module(self, name: str) -> Module:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"no module named {name!r}")


def expr_identifiers(expr: Expr) -> list[str]:
    """All signal names referenced by an expression, in evaluation order.

    This is the information-flow fan-in of the expression — the IFG
    builder uses it to create ``source -> target`` edges.
    """
    names: list[str] = []
    _collect_identifiers(expr, names)
    return names


def _collect_identifiers(expr: Expr, out: list[str]) -> None:
    if isinstance(expr, Identifier):
        out.append(expr.name)
    elif isinstance(expr, UnaryOp):
        _collect_identifiers(expr.operand, out)
    elif isinstance(expr, BinaryOp):
        _collect_identifiers(expr.left, out)
        _collect_identifiers(expr.right, out)
    elif isinstance(expr, Ternary):
        _collect_identifiers(expr.condition, out)
        _collect_identifiers(expr.if_true, out)
        _collect_identifiers(expr.if_false, out)
    elif isinstance(expr, BitSelect):
        out.append(expr.base.name)
        _collect_identifiers(expr.index, out)
    elif isinstance(expr, PartSelect):
        out.append(expr.base.name)
    elif isinstance(expr, Concat):
        for part in expr.parts:
            _collect_identifiers(part, out)
    # Numbers contribute nothing.
