"""Cycle-driven two-state simulator for elaborated designs.

Evaluation model per clock cycle:

1. apply the cycle's stimulus to top-level inputs;
2. settle combinational logic (assigns + port connections) in a
   topological order computed once at construction — combinational
   loops are a :class:`SimulationError`;
3. evaluate every flip-flop body against the settled pre-edge state
   (non-blocking semantics: all updates are simultaneous);
4. commit the register updates and settle combinational logic again;
5. record a change event for every signal whose end-of-cycle value
   differs from the previous cycle.

Two-state semantics: ``x``/``z`` literals were already folded to 0 by the
lexer, uninitialised signals start at 0, division by zero yields 0.
"""

from __future__ import annotations

from collections import deque

from repro.rtl import ast
from repro.rtl.ir import ElabAssign, ElaboratedDesign, SignalKind
from repro.rtl.trace import SignalTrace
from repro.utils.bitvec import mask


class SimulationError(ValueError):
    """Combinational loop, multiple drivers, or unsupported construct."""


class RtlSimulator:
    """Simulates one :class:`ElaboratedDesign`."""

    def __init__(self, design: ElaboratedDesign):
        self.design = design
        self._order = _schedule(design)
        self._widths = {name: s.width for name, s in design.signals.items()}
        self.values: dict[str, int] = {name: 0 for name in design.signals}
        self.cycle = -1
        self._settle()

    # -- public API -------------------------------------------------------

    def step(self, inputs: dict[str, int] | None = None) -> None:
        """Advance one clock cycle with the given top-input values.

        Input names may be unqualified (``"i"``) or fully qualified
        (``"top.i"``).
        """
        self.cycle += 1
        if inputs:
            for name, value in inputs.items():
                qualified = self._qualify_input(name)
                self.values[qualified] = value & mask(self._widths[qualified])
        self._settle()
        updates = {}
        for ff in self.design.ffs:
            try:
                self._eval_statement(ff.body, updates)
            except SimulationError as error:
                targets = set()
                _collect_ff_targets(ff.body, targets)
                where = ", ".join(sorted(targets)) or "<empty body>"
                raise SimulationError(
                    f"cycle {self.cycle}: in always block driving "
                    f"{where}: {error}"
                ) from error
        for target, value in updates.items():
            self.values[target] = value & mask(self._widths[target])
        self._settle()

    def run(
        self,
        cycles: int,
        stimulus: list[dict[str, int]] | None = None,
        trace: SignalTrace | None = None,
    ) -> SignalTrace:
        """Run ``cycles`` cycles; returns the recorded trace.

        ``stimulus[c]`` supplies the inputs for cycle ``c`` (missing
        entries hold their previous values).
        """
        if trace is None:
            names = self.design.signal_names()
            trace = SignalTrace(names, [self.values[n] for n in names])
        for cycle in range(cycles):
            previous = dict(self.values)
            inputs = stimulus[cycle] if stimulus and cycle < len(stimulus) else None
            self.step(inputs)
            for index, name in enumerate(trace.signal_names):
                if self.values[name] != previous[name]:
                    trace.record(self.cycle, index, previous[name], self.values[name])
            trace.close(self.cycle)
        return trace

    def value(self, name: str) -> int:
        """Current value of a signal (qualified or top-level name)."""
        return self.values[self._qualify_input(name)]

    def preset(self, values: dict[str, int], *, reset: bool = False) -> None:
        """Overwrite signal state (register initialisation) and re-settle.

        With ``reset`` the design first returns to the power-on all-zero
        state, so one simulator instance can run many programs; the
        ``values`` then seed the named registers, exactly as an RTL
        testbench would force them before releasing reset.
        """
        if reset:
            for name in self.values:
                self.values[name] = 0
            self.cycle = -1
        for name, value in values.items():
            qualified = self._qualify_input(name)
            self.values[qualified] = value & mask(self._widths[qualified])
        self._settle()

    # -- internals ----------------------------------------------------------

    def _qualify_input(self, name: str) -> str:
        if name in self.values:
            return name
        qualified = f"{self.design.top}.{name}"
        if qualified in self.values:
            return qualified
        raise KeyError(f"unknown signal {name!r}")

    def _settle(self) -> None:
        for assign in self._order:
            try:
                value = self._eval(assign.value)
            except SimulationError as error:
                raise SimulationError(
                    f"cycle {self.cycle}: while settling "
                    f"{assign.target!r}: {error}"
                ) from error
            self.values[assign.target] = value & mask(self._widths[assign.target])

    def _eval_statement(self, statement: ast.Statement, updates: dict[str, int]) -> None:
        if isinstance(statement, ast.NonBlocking):
            try:
                updates[statement.target] = self._eval(statement.value)
            except SimulationError as error:
                raise SimulationError(
                    f"in assignment to {statement.target!r}: {error}"
                ) from error
        elif isinstance(statement, ast.If):
            if self._eval(statement.condition):
                self._eval_statement(statement.then_body, updates)
            elif statement.else_body is not None:
                self._eval_statement(statement.else_body, updates)
        elif isinstance(statement, ast.Block):
            for child in statement.statements:
                self._eval_statement(child, updates)
        else:
            raise SimulationError(f"unsupported statement {type(statement).__name__}")

    def _expr_width(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Identifier):
            return self._widths[expr.name]
        if isinstance(expr, ast.Number) and expr.width is not None:
            return expr.width
        if isinstance(expr, ast.BitSelect):
            return 1
        if isinstance(expr, ast.PartSelect):
            return expr.msb - expr.lsb + 1
        return 64

    def _eval(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Identifier):
            return self.values[expr.name]
        if isinstance(expr, ast.Number):
            return expr.value if expr.width is None else expr.value & mask(expr.width)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Ternary):
            if self._eval(expr.condition):
                return self._eval(expr.if_true)
            return self._eval(expr.if_false)
        if isinstance(expr, ast.BitSelect):
            return (self._eval(expr.base) >> self._eval(expr.index)) & 1
        if isinstance(expr, ast.PartSelect):
            value = self._eval(expr.base)
            return (value >> expr.lsb) & mask(expr.msb - expr.lsb + 1)
        if isinstance(expr, ast.Concat):
            value = 0
            for part in expr.parts:
                width = self._expr_width(part)
                value = (value << width) | (self._eval(part) & mask(width))
            return value
        raise SimulationError(f"unsupported expression {type(expr).__name__}")

    def _eval_unary(self, expr: ast.UnaryOp) -> int:
        operand = self._eval(expr.operand)
        width = self._expr_width(expr.operand)
        if expr.op == "~":
            return ~operand & mask(width)
        if expr.op == "!":
            return 0 if operand else 1
        if expr.op == "-":
            return -operand & mask(64)
        if expr.op == "&":  # reduction AND
            return 1 if operand == mask(width) else 0
        if expr.op == "|":
            return 1 if operand else 0
        if expr.op == "^":
            return operand.bit_count() & 1
        raise SimulationError(f"unsupported unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.BinaryOp) -> int:
        op = expr.op
        left = self._eval(expr.left)
        # Short-circuit logical forms.
        if op == "&&":
            return 1 if left and self._eval(expr.right) else 0
        if op == "||":
            return 1 if left or self._eval(expr.right) else 0
        right = self._eval(expr.right)
        if op == "+":
            return left + right
        if op == "-":
            return (left - right) & mask(64)
        if op == "*":
            return left * right
        if op == "/":
            return left // right if right else 0
        if op == "%":
            return left % right if right else 0
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << min(right, 64)
        if op == ">>":
            return left >> min(right, 1 << 16)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise SimulationError(f"unsupported binary operator {op!r}")


def _schedule(design: ElaboratedDesign) -> list[ElabAssign]:
    """Topological order of combinational drivers (Kahn's algorithm)."""
    drivers: dict[str, ElabAssign] = {}
    for assign in design.assigns:
        if assign.target in drivers:
            raise SimulationError(f"multiple drivers for {assign.target!r}")
        drivers[assign.target] = assign

    ff_targets = design.ff_targets()
    for target in drivers:
        if target in ff_targets:
            raise SimulationError(
                f"{target!r} driven both combinationally and by a flip-flop"
            )

    # Dependency edges among combinational targets only.
    dependents: dict[str, list[str]] = {target: [] for target in drivers}
    in_degree = {target: 0 for target in drivers}
    for target, assign in drivers.items():
        # First-occurrence dedupe, not set(): the topological order this
        # feeds must be identical across processes (hash-salt-free).
        for name in dict.fromkeys(ast.expr_identifiers(assign.value)):
            if name in drivers:
                dependents[name].append(target)
                in_degree[target] += 1

    ready = deque(sorted(t for t, deg in in_degree.items() if deg == 0))
    order: list[ElabAssign] = []
    while ready:
        target = ready.popleft()
        order.append(drivers[target])
        for dependent in dependents[target]:
            in_degree[dependent] -= 1
            if in_degree[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(drivers):
        cyclic = sorted(t for t, deg in in_degree.items() if deg > 0)
        raise SimulationError(f"combinational loop through {cyclic}")
    return order


def _collect_ff_targets(statement: ast.Statement, out: set[str]) -> None:
    """Targets of a flip-flop body (names a failing always block)."""
    if isinstance(statement, ast.NonBlocking):
        out.add(statement.target)
    elif isinstance(statement, ast.If):
        _collect_ff_targets(statement.then_body, out)
        if statement.else_body is not None:
            _collect_ff_targets(statement.else_body, out)
    elif isinstance(statement, ast.Block):
        for child in statement.statements:
            _collect_ff_targets(child, out)


def _kind_is_input(design: ElaboratedDesign, name: str) -> bool:
    signal = design.signals[name]
    return signal.kind is SignalKind.INPUT and signal.depth == 0
