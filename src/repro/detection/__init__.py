"""Leakage detection: the paper's Online Phase analysis components.

* :mod:`repro.detection.windows` — Step 1 of the Leakage Detector:
  derive speculative-window start/end cycles from the traced ROB
  signals (the ``unsafe`` dispatch strobe and the ``brupdate``-style
  resolution bus), yielding the Misspeculation Table;
* :mod:`repro.detection.mst` — Table 1: rendering of misspeculated
  windows with raw and readable instructions;
* :mod:`repro.detection.snapshot_diff` — Step 2: discrepancies between
  the snapshots at each window's boundaries (potential leakage
  locations);
* :mod:`repro.detection.leakage` — ties Steps 1 and 2 together;
* :mod:`repro.detection.vulnerability` — the Vulnerability Detector:
  commit-aware filtering of architectural changes, PDLC
  cross-referencing, and root-cause reports.
"""

from repro.detection.windows import DetectedWindow, RobSignalMap, extract_windows
from repro.detection.mst import MisspeculationTable
from repro.detection.snapshot_diff import window_diff
from repro.detection.leakage import LeakageDetector, PotentialLeak
from repro.detection.nesting import (
    WindowNode,
    depth_histogram,
    max_depth,
    nesting_forest,
)
from repro.detection.vulnerability import (
    LeakReport,
    RootCause,
    VulnerabilityDetector,
)

__all__ = [
    "DetectedWindow",
    "RobSignalMap",
    "extract_windows",
    "MisspeculationTable",
    "window_diff",
    "LeakageDetector",
    "PotentialLeak",
    "WindowNode",
    "depth_histogram",
    "max_depth",
    "nesting_forest",
    "LeakReport",
    "RootCause",
    "VulnerabilityDetector",
]
