"""Speculative-window extraction from traced ROB signals.

Paper §3.2, Leakage Detector Step 1: "the start and end of each
speculative window are defined […] by tracing speculative execution
indicators, such as the processor's Re-order Buffer (RoB)": each
micro-op carries an ``unsafe`` signal marking the start of a window, and
the RoB receives ``brupdate``-style resolution signals that confirm the
(mis)prediction and close it.

Our core latches exactly those events onto dedicated traced signals —
``rob.disp_tag``/``disp_pc``/``disp_word`` on dispatch of a speculation
source, ``rob.res_tag``/``res_mispredict`` on resolution — and this
module reconstructs the windows *purely from the trace*, never from
simulator-internal state.  (The core's ground-truth window list exists
only so tests can validate this extraction.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.trace import SignalTrace


@dataclass(frozen=True)
class RobSignalMap:
    """Names of the ROB indicator signals in the trace."""

    disp_tag: str = "boom.rob.disp_tag"
    disp_pc: str = "boom.rob.disp_pc"
    disp_word: str = "boom.rob.disp_word"
    res_tag: str = "boom.rob.res_tag"
    res_mispredict: str = "boom.rob.res_mispredict"


@dataclass(frozen=True)
class DetectedWindow:
    """One speculative window recovered from the trace."""

    tag: int
    start: int
    end: int
    pc: int
    word: int
    mispredicted: bool
    resolved: bool = True


def extract_windows(
    trace: SignalTrace,
    signal_map: RobSignalMap | None = None,
) -> list[DetectedWindow]:
    """Recover all speculative windows from a signal trace.

    Replays the change events while tracking the dispatch/resolution
    strobe values; a ``disp_tag`` change opens a window (the pc/word
    signals are written before the tag, so their running values already
    belong to this dispatch), a matching ``res_tag`` change closes it.
    Windows still open at the end of the trace close unresolved.
    """
    signal_map = signal_map or RobSignalMap()
    ix_disp_tag = trace.index_of(signal_map.disp_tag)
    ix_disp_pc = trace.index_of(signal_map.disp_pc)
    ix_disp_word = trace.index_of(signal_map.disp_word)
    ix_res_tag = trace.index_of(signal_map.res_tag)
    ix_res_mispredict = trace.index_of(signal_map.res_mispredict)

    disp_pc = trace.initial[ix_disp_pc]
    disp_word = trace.initial[ix_disp_word]
    res_mispredict = trace.initial[ix_res_mispredict]

    open_windows: dict[int, tuple[int, int, int]] = {}  # tag -> (start, pc, word)
    windows: list[DetectedWindow] = []

    # Replay only the five indicator signals' events (via the trace's
    # per-signal index) instead of the full change stream — walked
    # positionally over the columns, no event objects built.
    positions = trace.signal_event_positions({
        ix_disp_tag, ix_disp_pc, ix_disp_word, ix_res_tag, ix_res_mispredict,
    })
    cycles, signals, _olds, news = trace.columns()
    for position in positions:
        signal = signals[position]
        new = news[position]
        if signal == ix_disp_pc:
            disp_pc = new
        elif signal == ix_disp_word:
            disp_word = new
        elif signal == ix_res_mispredict:
            res_mispredict = new
        elif signal == ix_disp_tag:
            open_windows[new] = (cycles[position], disp_pc, disp_word)
        elif signal == ix_res_tag:
            opened = open_windows.pop(new, None)
            if opened is not None:
                start, pc, word = opened
                windows.append(DetectedWindow(
                    tag=new, start=start, end=cycles[position],
                    pc=pc, word=word,
                    mispredicted=bool(res_mispredict),
                ))

    for tag, (start, pc, word) in open_windows.items():
        windows.append(DetectedWindow(
            tag=tag, start=start, end=trace.final_cycle,
            pc=pc, word=word, mispredicted=False, resolved=False,
        ))
    windows.sort(key=lambda w: (w.start, w.tag))
    return windows
