"""The Leakage Detector: windows + snapshot diffs = potential leaks.

Combines Step 1 (window extraction from the traced ROB signals) and
Step 2 (snapshot discrepancies) of the paper's Leakage Detector and
hands each misspeculated window's potential leakage locations to the
Vulnerability Detector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boom.core import CoreResult
from repro.detection.snapshot_diff import window_diff
from repro.detection.windows import DetectedWindow, RobSignalMap, extract_windows


@dataclass(frozen=True)
class PotentialLeak:
    """One misspeculated window and its changed-signal set."""

    window: DetectedWindow
    changed: dict[str, tuple[int, int]]  # signal -> (before, after)


class LeakageDetector:
    """Trace-only leakage detection (no simulator internals consulted)."""

    def __init__(self, signal_map: RobSignalMap | None = None):
        self.signal_map = signal_map or RobSignalMap()

    def windows(self, result: CoreResult) -> list[DetectedWindow]:
        """All speculative windows of a run (Step 1)."""
        return extract_windows(result.trace, self.signal_map)

    def potential_leaks(
        self,
        result: CoreResult,
        windows: list[DetectedWindow] | None = None,
    ) -> list[PotentialLeak]:
        """Changed-signal sets for every *misspeculated* window (Step 2).

        Only misspeculated windows can leak transient state: a correctly
        predicted window's changes are simply early execution of the
        architectural path.

        Callers that already ran Step 1 pass its result as ``windows``
        so the trace is not replayed a second time per iteration.
        """
        if windows is None:
            windows = self.windows(result)
        leaks = []
        for window in windows:
            if not window.mispredicted:
                continue
            changed = window_diff(result.trace, window)
            if changed:
                leaks.append(PotentialLeak(window=window, changed=changed))
        return leaks
