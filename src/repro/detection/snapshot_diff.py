"""Snapshot discrepancies at speculative-window boundaries.

Paper §3.2, Leakage Detector Step 2: "the discrepancies between the
snapshots corresponding to the start and end of each speculative window
are computed.  These discrepancies represent potential information
leakage locations."  The before-snapshot is the state at the end of the
cycle *preceding* the window's opening dispatch.
"""

from __future__ import annotations

from repro.detection.windows import DetectedWindow
from repro.rtl.trace import SignalTrace


def window_diff(
    trace: SignalTrace,
    window: DetectedWindow,
) -> dict[str, tuple[int, int]]:
    """Signals whose value differs across the window.

    Returns ``{signal_name: (value_before, value_after)}`` — the orange
    "discrepancies between snapshots" of the paper's Figure 1.

    Served from the trace's per-window view, so the boundary diff shares
    the event slice (and its cost) with every other consumer of the same
    speculative window.
    """
    raw = trace.window_view(window.start, window.end).diff()
    return {
        trace.signal_names[index]: values
        for index, values in raw.items()
    }
