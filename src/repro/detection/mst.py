"""The Misspeculation Table (MST) — the paper's Table 1.

"We use this information and maintain a table, called Misspeculation
Table (MST), that keeps the start and end clock cycles and the related
instruction for each misspeculated window" (§3.2).  Rendered with the
same columns as Table 1: ID, Start, End, Instruction (raw hex), and
Instruction (Readable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.windows import DetectedWindow
from repro.isa.disassembler import disassemble
from repro.utils.text import ascii_table, format_hex


@dataclass
class MisspeculationTable:
    """Accumulates misspeculated windows across one or many runs."""

    rows: list[DetectedWindow] = field(default_factory=list)

    def add_windows(self, windows: list[DetectedWindow]) -> int:
        """Record the misspeculated windows; returns how many were added."""
        added = [w for w in windows if w.mispredicted]
        self.rows.extend(added)
        return len(added)

    def merge(self, *others: "MisspeculationTable") -> "MisspeculationTable":
        """Combine this table with others into a new table.

        Rows are canonically ordered by (start, end, tag, pc, word), so
        the merge of shard-local tables is associative and independent
        of shard completion order.
        """
        rows: list[DetectedWindow] = list(self.rows)
        for other in others:
            rows.extend(other.rows)
        rows.sort(key=lambda w: (w.start, w.end, w.tag, w.pc, w.word))
        return MisspeculationTable(rows=rows)

    def __len__(self) -> int:
        return len(self.rows)

    def render(self, limit: int | None = None) -> str:
        """Render in the paper's Table 1 format."""
        shown = self.rows if limit is None else self.rows[:limit]
        table_rows = [
            [
                index + 1,
                window.start,
                window.end,
                format_hex(window.word, 32),
                disassemble(window.word, pc=window.pc),
            ]
            for index, window in enumerate(shown)
        ]
        return ascii_table(
            ["ID", "Start", "End", "Instruction", "Instruction(Readable)"],
            table_rows,
            title="Misspeculation Table (MST)",
        )
