"""Speculation-window nesting analysis.

Out-of-order cores speculate *under* speculation: a branch dispatched
while an older branch is unresolved opens a nested window.  Nesting
structure matters for triage — a leak attributed to an inner window is
squashed (and re-detected) together with its ancestors — and the
maximum nesting depth is a useful characterisation of how aggressively
an input drives the machine off the architectural path.

:func:`nesting_forest` organises a run's windows into containment trees
by their [start, end] cycle intervals; :func:`max_depth` and
:func:`depth_histogram` summarise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.windows import DetectedWindow


@dataclass
class WindowNode:
    """One window and the windows nested inside it."""

    window: DetectedWindow
    children: list["WindowNode"] = field(default_factory=list)

    def depth(self) -> int:
        """Height of this subtree (a childless node has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def count(self) -> int:
        """Number of windows in this subtree."""
        return 1 + sum(child.count() for child in self.children)


def nesting_forest(windows: list[DetectedWindow]) -> list[WindowNode]:
    """Arrange windows into containment trees.

    Window B nests inside window A when A's [start, end] interval
    contains B's and B opened no earlier than A.  Windows are processed
    in (start, -end) order so enclosing windows precede their contents;
    a stack tracks the current chain of open ancestors.
    """
    ordered = sorted(windows, key=lambda w: (w.start, -w.end, w.tag))
    roots: list[WindowNode] = []
    stack: list[WindowNode] = []
    for window in ordered:
        node = WindowNode(window)
        while stack and not _contains(stack[-1].window, window):
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def _contains(outer: DetectedWindow, inner: DetectedWindow) -> bool:
    return outer.start <= inner.start and inner.end <= outer.end and (
        (outer.start, outer.end) != (inner.start, inner.end)
        or outer.tag != inner.tag
    )


def max_depth(windows: list[DetectedWindow]) -> int:
    """Deepest speculation nesting across a run (0 for no windows)."""
    forest = nesting_forest(windows)
    if not forest:
        return 0
    return max(node.depth() for node in forest)


def depth_histogram(windows: list[DetectedWindow]) -> dict[int, int]:
    """Number of windows at each nesting depth (depth 1 = outermost)."""
    histogram: dict[int, int] = {}

    def visit(node: WindowNode, depth: int) -> None:
        histogram[depth] = histogram.get(depth, 0) + 1
        for child in node.children:
            visit(child, depth + 1)

    for root in nesting_forest(windows):
        visit(root, 1)
    return histogram
