"""Per-shard heartbeat + telemetry log writer.

Each shard execution owns one ``telemetry/shard-<k>.jsonl`` file inside
the run directory.  The writer truncates the file when the shard
starts (a resumed shard replaces its crashed predecessor's debris) and
then appends:

* a ``meta`` line describing the shard (scenario, seed, pid, jobs),
* a ``heartbeat`` line every ``interval`` fuzz iterations — shard id,
  iteration index, LP-coverage size, wall-clock timestamp, RSS —
  flushed per line so a killed worker leaves a truthful partial log,
* on clean completion: the shard's span records, its metric set, and a
  final ``complete`` marker.

The heartbeat *cadence* is iteration-based, never time-based: the set
of (shard, iteration, coverage) heartbeat rows is a deterministic
function of the scenario and seed, identical across ``--jobs`` counts;
only timestamps and RSS vary by machine.  A file whose last record is
not ``complete`` marks a crashed or still-running shard — that, plus
the timestamp of its last heartbeat, is what ``repro stats`` surfaces
as shard lag.
"""

from __future__ import annotations

import resource
import sys
import time
from pathlib import Path

from repro.telemetry import export
from repro.telemetry.metrics import MetricSet
from repro.telemetry.spans import SpanRecord

#: Fuzz iterations between heartbeat lines.
HEARTBEAT_INTERVAL = 10


def rss_kb() -> int:
    """Peak resident set size of this process in KiB."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        usage //= 1024
    return int(usage)


def shard_filename(shard: int) -> str:
    return f"shard-{shard:04d}.jsonl"


class HeartbeatWriter:
    """Streams one shard's telemetry log, heartbeat lines included."""

    def __init__(self, directory: Path | str, shard: int,
                 interval: int = HEARTBEAT_INTERVAL,
                 clock=time.time) -> None:
        self.shard = shard
        self.interval = max(1, interval)
        self.path = Path(directory) / shard_filename(shard)
        self._clock = clock
        self.last_iteration = -1
        self.last_coverage = 0
        #: Records that failed to reach disk (disk full, telemetry dir
        #: deleted mid-run, ...).  Telemetry is an observer: a failed
        #: write degrades to a dropped record and bumps this counter —
        #: it must never abort the shard that is being observed.
        self.dropped = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")

    def _write(self, record: dict) -> None:
        try:
            self._handle.write(export.dump_line(record) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            # ValueError covers writes to a handle something external
            # already closed; OSError covers ENOSPC, deleted dirs, etc.
            self.dropped += 1

    def write_meta(self, **fields) -> None:
        self._write(export.meta_record("shard", shard=self.shard, **fields))

    def on_iteration(self, index: int, new_items: int,
                     coverage_size: int) -> None:
        """Fuzz-loop observer hook: beat every ``interval`` iterations."""
        self.last_iteration = index
        self.last_coverage = coverage_size
        if index % self.interval == 0:
            self._beat()

    def _beat(self) -> None:
        self._write(export.heartbeat_record(
            self.shard, self.last_iteration, self.last_coverage,
            self._clock(), rss_kb(),
        ))

    def finalize(self, spans: list[SpanRecord] = (),
                 metrics: MetricSet | None = None,
                 findings: int = 0) -> None:
        """Write the shard's spans/metrics and the complete marker."""
        if self.last_iteration >= 0 and self.last_iteration % self.interval:
            self._beat()  # final partial-interval beat
        for span in spans:
            self._write(span.to_dict())
        if metrics is not None and not metrics.is_empty():
            for record in export.metric_records(metrics):
                self._write(record)
        self._write(export.complete_record(
            self.shard, iterations=self.last_iteration + 1,
            findings=findings,
        ))
        self.close()

    def close(self) -> None:
        try:
            if not self._handle.closed:
                self._handle.close()
        except OSError:
            self.dropped += 1  # final buffered data lost with the handle

    def __enter__(self) -> "HeartbeatWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
