"""Telemetry wire formats: JSONL event log, Prometheus text, summary.

Three export surfaces, all stdlib-only:

* **JSONL event log** — one JSON object per line, discriminated by
  ``type`` (``meta`` / ``span`` / ``metric`` / ``heartbeat`` /
  ``complete``).  Readers drop a torn trailing line (a killed worker's
  partial write) exactly like the scenario store's shard logs, and
  raise :class:`TelemetryError` on mid-file corruption.
* **Prometheus text exposition** — counters, gauges, and histogram
  count/sum/min/max rendered in the ``# TYPE`` text format so a
  scraper (or a human) can diff two runs with standard tooling.
* **TelemetrySummary** — the compact JSON the report section and
  ``repro stats --format json`` share: wall clock, tracked seconds,
  phase rows, shard rows, merged metrics.

The module also carries the mini schema validator behind
``repro stats --validate`` / the CI telemetry job: a deliberately small
schema dialect (per record type: required/optional field -> JSON type)
checked in at ``docs/telemetry.schema.json``, so the event log's shape
is pinned without a third-party jsonschema dependency.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.metrics import MetricSet
from repro.telemetry.spans import SpanRecord
from repro.utils.text import ascii_table


class TelemetryError(RuntimeError):
    """Raised for unreadable telemetry artifacts or absent telemetry."""


# -- JSONL records ----------------------------------------------------------

def meta_record(role: str, **fields) -> dict:
    record = {"type": "meta", "role": role}
    record.update(fields)
    return record


def heartbeat_record(shard: int, iteration: int, coverage: int,
                     timestamp: float, rss_kb: int) -> dict:
    return {
        "type": "heartbeat",
        "shard": shard,
        "iteration": iteration,
        "coverage": coverage,
        "timestamp": round(timestamp, 3),
        "rss_kb": rss_kb,
    }


def complete_record(shard: int, iterations: int, findings: int) -> dict:
    return {
        "type": "complete",
        "shard": shard,
        "iterations": iterations,
        "findings": findings,
    }


def metric_records(metrics: MetricSet) -> list[dict]:
    records: list[dict] = []
    for name in sorted(metrics.counters):
        records.append({"type": "metric", "kind": "counter", "name": name,
                        "value": metrics.counters[name]})
    for name in sorted(metrics.gauges):
        records.append({"type": "metric", "kind": "gauge", "name": name,
                        "value": metrics.gauges[name]})
    for name in sorted(metrics.histograms):
        stat = metrics.histograms[name]
        records.append({"type": "metric", "kind": "histogram", "name": name,
                        "count": stat.count, "total": stat.total,
                        "min": stat.minimum, "max": stat.maximum})
    return records


def records_to_metrics(records: list[dict]) -> MetricSet:
    metrics = MetricSet()
    for record in records:
        if record.get("type") != "metric":
            continue
        kind, name = record.get("kind"), record.get("name", "")
        if kind == "counter":
            metrics.counters[name] = record.get("value", 0)
        elif kind == "gauge":
            metrics.gauges[name] = record.get("value", 0)
        elif kind == "histogram":
            from repro.telemetry.metrics import HistogramStat
            metrics.histograms[name] = HistogramStat(
                count=int(record.get("count", 0)),
                total=float(record.get("total", 0.0)),
                minimum=record.get("min"),
                maximum=record.get("max"),
            )
    return metrics


def records_to_spans(records: list[dict]) -> list[SpanRecord]:
    return [SpanRecord.from_dict(r) for r in records if r.get("type") == "span"]


# -- JSONL files ------------------------------------------------------------

def dump_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def append_jsonl(path: Path | str, records: list[dict]) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(dump_line(record) + "\n")


def write_jsonl(path: Path | str, records: list[dict]) -> None:
    """Atomically replace ``path`` with ``records`` (tmp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(dump_line(record) + "\n")
    os.replace(tmp, path)


def read_jsonl(path: Path | str) -> list[dict]:
    """Read a telemetry JSONL file, tolerating a torn trailing line.

    A worker killed mid-append leaves a partial final line; that is
    expected crash debris and is dropped.  A malformed line *before*
    the end means the file is corrupt, not torn, and raises.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return []
    records: list[dict] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn trailing write from a killed worker
            raise TelemetryError(
                f"corrupt telemetry log {path}: bad JSON on line {index + 1}"
            ) from None
    return records


# -- Prometheus text exposition ---------------------------------------------

def _prom_name(prefix: str, name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return prefix + cleaned


def _prom_value(value: float) -> str:
    if value is None:
        return "NaN"
    as_float = float(value)
    if as_float == int(as_float):
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(metrics: MetricSet, prefix: str = "repro_") -> str:
    """Render a MetricSet in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(metrics.counters):
        prom = _prom_name(prefix, name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(metrics.counters[name])}")
    for name in sorted(metrics.gauges):
        prom = _prom_name(prefix, name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(metrics.gauges[name])}")
    for name in sorted(metrics.histograms):
        stat = metrics.histograms[name]
        prom = _prom_name(prefix, name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {stat.count}")
        lines.append(f"{prom}_sum {_prom_value(stat.total)}")
        lines.append(f"{prom}_min {_prom_value(stat.minimum)}")
        lines.append(f"{prom}_max {_prom_value(stat.maximum)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- compact summary --------------------------------------------------------

@dataclass
class TelemetrySummary:
    """The compact cross-surface summary (report section, stats JSON)."""

    wall_seconds: float
    tracked_seconds: float
    phases: list[dict] = field(default_factory=list)
    shards: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of campaign wall-clock accounted for by spans.

        With ``--jobs > 1`` worker shards run concurrently, so summed
        span self-time can legitimately exceed 1.0x the campaign wall
        clock.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return self.tracked_seconds / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "wall_seconds": round(self.wall_seconds, 6),
            "tracked_seconds": round(self.tracked_seconds, 6),
            "span_coverage": round(self.coverage, 4),
            "phases": self.phases,
            "shards": self.shards,
            "metrics": self.metrics,
        }

    def render(self, top_phases: int = 8) -> str:
        """The optional telemetry section of a campaign report."""
        lines = [
            "telemetry:",
            f"  wall-clock           : {self.wall_seconds:.3f} s",
            f"  span-tracked         : {self.tracked_seconds:.3f} s"
            f" ({self.coverage:.0%} of wall)",
        ]
        rows = [
            [p["name"], str(p["count"]), f"{p['seconds']:.3f}",
             f"{p['self_seconds']:.3f}"]
            for p in self.phases[:top_phases]
        ]
        if rows:
            table = ascii_table(
                ["phase", "count", "total s", "self s"], rows,
            )
            lines.extend("  " + line for line in table.splitlines())
        if self.shards:
            status = ", ".join(
                f"shard {s['shard']}: {s['iterations']} it"
                + ("" if s["complete"] else " (incomplete)")
                for s in self.shards
            )
            lines.append(f"  shards               : {status}")
        return "\n".join(lines)


# -- schema validation ------------------------------------------------------

_JSON_TYPES = {
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
    "array": list,
    "object": dict,
}


def load_schema(path: Path | str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"cannot load telemetry schema {path}: {exc}")
    if "record_types" not in schema:
        raise TelemetryError(f"telemetry schema {path} has no record_types")
    return schema


def _check_type(value, type_names) -> bool:
    if isinstance(type_names, str):
        type_names = [type_names]
    for name in type_names:
        expected = _JSON_TYPES.get(name)
        if expected is None:
            continue
        if isinstance(value, bool) and name in ("integer", "number"):
            continue  # bool is an int subclass; JSON-wise it is not
        if isinstance(value, expected):
            return True
    return False


def validate_records(records: list[dict], schema: dict,
                     source: str = "") -> list[str]:
    """Validate JSONL records against the checked-in telemetry schema.

    Returns human-readable violation strings (empty = clean).  Unknown
    record types and extra fields are violations: the schema is the
    contract between the event log and downstream consumers.
    """
    where = f"{source}:" if source else ""
    types = schema.get("record_types", {})
    errors: list[str] = []
    for index, record in enumerate(records, 1):
        if not isinstance(record, dict):
            errors.append(f"{where}{index}: record is not an object")
            continue
        kind = record.get("type")
        spec = types.get(kind)
        if spec is None:
            errors.append(f"{where}{index}: unknown record type {kind!r}")
            continue
        required = spec.get("required", {})
        optional = spec.get("optional", {})
        for name, type_names in required.items():
            if name not in record:
                errors.append(
                    f"{where}{index}: {kind} record missing field {name!r}")
            elif not _check_type(record[name], type_names):
                errors.append(
                    f"{where}{index}: {kind}.{name} is not {type_names}")
        for name, value in record.items():
            if name in required:
                continue
            if name not in optional:
                errors.append(
                    f"{where}{index}: {kind} record has unknown field "
                    f"{name!r}")
            elif not _check_type(value, optional[name]):
                errors.append(
                    f"{where}{index}: {kind}.{name} is not {optional[name]}")
    return errors
