"""Hierarchical wall-clock spans with a swap-in/no-op recorder.

The module keeps one process-wide recorder slot.  By default it holds a
:class:`NullRecorder` whose ``span()`` returns a shared do-nothing
context manager — the instrumented hot paths (one ``span()`` call per
fuzz iteration) pay a method call and a ``with`` block, nothing else.
``enable()`` swaps in a real :class:`Recorder`; ``disable()`` swaps the
null one back and hands the caller the recorder it displaced.

Two entry points with different contracts:

* :func:`span` — records when telemetry is on, free no-op when off.
  Use it for pure instrumentation.
* :func:`timed` — **always** measures (exposing ``.seconds`` after the
  block) and *additionally* records a span when telemetry is on.  Use
  it where the measurement feeds persisted statistics
  (``OnlineStats.simulate_seconds``, baseline wall clocks) that must
  keep populating with telemetry off.

Span records carry the span *name* (``online/simulate``), its stack
depth, a start offset relative to the recorder's epoch, the inclusive
duration, and the exclusive self-time (children subtracted as they
finish).  Names repeat across shards on purpose: the stats layer
aggregates by name, and the shard identity lives in the ``shard/<k>``
span plus the per-shard file the records land in.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.telemetry.metrics import MetricSet


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    depth: int
    start: float          # seconds since the recorder's epoch
    seconds: float        # inclusive wall time
    self_seconds: float   # exclusive wall time (children removed)

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "depth": self.depth,
            "start": round(self.start, 6),
            "seconds": round(self.seconds, 6),
            "self_seconds": round(self.self_seconds, 6),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            name=data["name"],
            depth=int(data.get("depth", 0)),
            start=float(data.get("start", 0.0)),
            seconds=float(data["seconds"]),
            self_seconds=float(data.get("self_seconds", data["seconds"])),
        )


class _Frame:
    __slots__ = ("name", "depth", "start", "child_seconds")

    def __init__(self, name: str, depth: int, start: float) -> None:
        self.name = name
        self.depth = depth
        self.start = start
        self.child_seconds = 0.0


class _ActiveSpan:
    """Context manager handed out by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "_name", "_frame", "seconds")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._frame = None
        self.seconds = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._frame = self._recorder._push(self._name)
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds = self._recorder._pop(self._frame)
        return False


class _NullSpan:
    """Shared no-op span: enters, exits, measures nothing."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Stopwatch:
    """Measures like a span but records nothing (telemetry off)."""

    __slots__ = ("_start", "seconds")

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds = time.perf_counter() - self._start
        return False


class TelemetryWindow:
    """Spans + metrics captured between ``window()`` enter and exit."""

    __slots__ = ("spans", "metrics")

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.metrics: MetricSet = MetricSet()


class _Window:
    """Scopes a recorder to one unit of work (a shard execution).

    On entry it marks the finished-span list and swaps in a fresh
    :class:`MetricSet`; on exit it *takes* the spans finished inside the
    window out of the recorder and restores the previous metric set.
    The taken spans still contributed child-time to any enclosing frame
    before removal, so a parent span's self-time stays correct — this is
    how an inline shard's records end up only in the shard's own file
    while the parent campaign file keeps just campaign-level spans.
    """

    __slots__ = ("_recorder", "_mark", "_saved_metrics", "_window")

    def __init__(self, recorder: "Recorder") -> None:
        self._recorder = recorder

    def __enter__(self) -> TelemetryWindow:
        rec = self._recorder
        self._window = TelemetryWindow()
        with rec._lock:
            self._mark = len(rec._spans)
        self._saved_metrics = rec.metrics
        rec.metrics = self._window.metrics
        return self._window

    def __exit__(self, *exc) -> bool:
        rec = self._recorder
        with rec._lock:
            self._window.spans = rec._spans[self._mark:]
            del rec._spans[self._mark:]
        rec.metrics = self._saved_metrics
        return False


class Recorder:
    """Collects finished spans and metrics for one process.

    Span stacks are thread-local (each thread nests independently); the
    finished-span list and the metric set are lock-guarded, so worker
    threads may record concurrently.  Cross-*process* safety comes from
    the export layer: each worker process runs its own recorder and
    writes its own shard file, merged by shard id afterwards.
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._local = threading.local()
        self.metrics = MetricSet()

    # -- spans --------------------------------------------------------------

    def span(self, name: str) -> _ActiveSpan:
        return _ActiveSpan(self, name)

    def _push(self, name: str) -> _Frame:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        frame = _Frame(name, len(stack), time.perf_counter())
        stack.append(frame)
        return frame

    def _pop(self, frame: _Frame) -> float:
        end = time.perf_counter()
        stack = self._local.stack
        stack.pop()
        seconds = end - frame.start
        if stack:
            stack[-1].child_seconds += seconds
        record = SpanRecord(
            name=frame.name,
            depth=frame.depth,
            start=frame.start - self.epoch,
            seconds=seconds,
            self_seconds=max(0.0, seconds - frame.child_seconds),
        )
        with self._lock:
            self._spans.append(record)
        return seconds

    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def window(self) -> _Window:
        return _Window(self)

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)


class NullRecorder:
    """The disabled recorder: every operation is a no-op."""

    enabled = False
    metrics = None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> list[SpanRecord]:
        return []

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


_NULL_RECORDER = NullRecorder()
_RECORDER: Recorder | NullRecorder = _NULL_RECORDER


def recorder() -> Recorder | NullRecorder:
    """The process-wide recorder (the null singleton when disabled)."""
    return _RECORDER


def enabled() -> bool:
    return _RECORDER.enabled


def enable(rec: Recorder | None = None) -> Recorder:
    """Install ``rec`` (or a fresh Recorder) as the process recorder."""
    global _RECORDER
    if rec is None:
        rec = Recorder()
    _RECORDER = rec
    return rec


def disable() -> Recorder | None:
    """Swap the null recorder back in; returns the displaced recorder."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = _NULL_RECORDER
    return previous if isinstance(previous, Recorder) else None


def span(name: str):
    """A recording span when telemetry is on, a shared no-op when off."""
    return _RECORDER.span(name)


def timed(name: str):
    """A context manager that always measures and exposes ``.seconds``.

    Records a span too when telemetry is enabled; degrades to a bare
    :class:`Stopwatch` when disabled so callers that feed persisted
    statistics keep getting real numbers either way.
    """
    rec = _RECORDER
    return rec.span(name) if rec.enabled else Stopwatch()


def count(name: str, value: float = 1) -> None:
    _RECORDER.count(name, value)


def gauge(name: str, value: float) -> None:
    _RECORDER.gauge(name, value)


def observe(name: str, value: float) -> None:
    _RECORDER.observe(name, value)
