"""The queryable run-observability layer behind ``repro stats``.

Loads a run directory's ``telemetry/`` artifacts — the parent
``campaign.jsonl``, every ``shard-*.jsonl`` (torn trailing lines
tolerated), and the atomic ``summary.json`` — into a
:class:`RunTelemetry` that answers the operator questions:

* where did wall-clock go (phase breakdown, aggregated by span name,
  ordered by self-time),
* what were the slowest individual spans,
* what is each shard doing (iterations, coverage, RSS, last-heartbeat
  lag, complete or not), and
* what do the merged metrics say (counters add, histograms add, gauges
  max — the :class:`~repro.telemetry.metrics.MetricSet` discipline).

Shard telemetry merges by shard id exactly like shard reports merge by
unit id: file order never matters, so ``--jobs 1`` and ``--jobs 8``
runs of the same scenario produce the same merged heartbeat rows
(timestamps and RSS aside).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry import export
from repro.telemetry.export import TelemetryError, TelemetrySummary
from repro.telemetry.metrics import MetricSet
from repro.telemetry.spans import Recorder, SpanRecord
from repro.utils.text import ascii_table

#: Telemetry artifact names inside a run directory.
TELEMETRY_DIRNAME = "telemetry"
CAMPAIGN_FILE = "campaign.jsonl"
SUMMARY_FILE = "summary.json"
#: Resilience artifacts (written by the campaign store / shard workers,
#: validated alongside the telemetry logs).
QUARANTINE_FILE = "quarantine.jsonl"
CHECKPOINT_DIRNAME = "checkpoints"

#: The parent campaign's root span name.
ROOT_SPAN = "campaign"


@dataclass
class ShardTelemetry:
    """One shard's telemetry log, parsed."""

    shard: int
    path: Path
    meta: dict = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: MetricSet = field(default_factory=MetricSet)
    heartbeats: list[dict] = field(default_factory=list)
    complete: bool = False
    iterations: int = 0
    findings: int = 0

    @property
    def attempt(self) -> int:
        """Which execution attempt produced this log (1 = first try;
        retried shards stamp their attempt into the meta record)."""
        return int(self.meta.get("attempt", 1))

    @property
    def last_iteration(self) -> int:
        if self.heartbeats:
            return int(self.heartbeats[-1]["iteration"])
        return -1

    @property
    def last_timestamp(self) -> float | None:
        if self.heartbeats:
            return float(self.heartbeats[-1]["timestamp"])
        return None

    @property
    def last_coverage(self) -> int:
        if self.heartbeats:
            return int(self.heartbeats[-1]["coverage"])
        return 0

    @property
    def rss_kb(self) -> int:
        if self.heartbeats:
            return int(self.heartbeats[-1]["rss_kb"])
        return 0


@dataclass
class RunTelemetry:
    """All telemetry artifacts of one run directory."""

    root: Path
    campaign_meta: dict = field(default_factory=dict)
    campaign_spans: list[SpanRecord] = field(default_factory=list)
    campaign_metrics: MetricSet = field(default_factory=MetricSet)
    shards: dict[int, ShardTelemetry] = field(default_factory=dict)
    #: Quarantine records (``quarantine.jsonl``) — shards that exhausted
    #: their retries; the run completed degraded without them.
    quarantined: list[dict] = field(default_factory=list)

    def all_spans(self) -> list[SpanRecord]:
        spans = list(self.campaign_spans)
        for shard in sorted(self.shards):
            spans.extend(self.shards[shard].spans)
        return spans

    def merged_metrics(self) -> MetricSet:
        shard_sets = [self.shards[k].metrics for k in sorted(self.shards)]
        return self.campaign_metrics.merge(*shard_sets)

    def wall_seconds(self) -> float:
        """Campaign wall-clock: the parent root span when present."""
        roots = [s.seconds for s in self.campaign_spans
                 if s.name == ROOT_SPAN and s.depth == 0]
        if roots:
            return max(roots)
        spans = self.all_spans()
        return max((s.seconds for s in spans), default=0.0)

    def tracked_seconds(self) -> float:
        """Total span self-time, excluding the root span's own residue."""
        return sum(
            s.self_seconds for s in self.all_spans()
            if not (s.name == ROOT_SPAN and s.depth == 0)
        )


def _parse_shard_file(path: Path) -> ShardTelemetry:
    records = export.read_jsonl(path)
    shard_id = None
    shard = ShardTelemetry(shard=-1, path=path)
    for record in records:
        kind = record.get("type")
        if kind == "meta":
            shard.meta = record
            if "shard" in record:
                shard_id = int(record["shard"])
        elif kind == "heartbeat":
            shard.heartbeats.append(record)
            shard_id = shard_id if shard_id is not None else record.get("shard")
        elif kind == "complete":
            shard.complete = True
            shard.iterations = int(record.get("iterations", 0))
            shard.findings = int(record.get("findings", 0))
    shard.spans = export.records_to_spans(records)
    shard.metrics = export.records_to_metrics(records)
    if shard_id is None:
        # fall back to the filename (shard-NNNN.jsonl)
        stem = path.stem
        try:
            shard_id = int(stem.split("-", 1)[1])
        except (IndexError, ValueError):
            raise TelemetryError(
                f"cannot determine shard id of telemetry log {path}")
    shard.shard = int(shard_id)
    if not shard.complete:
        shard.iterations = shard.last_iteration + 1
    return shard


def load_run_telemetry(run_dir: Path | str) -> RunTelemetry:
    """Load ``<run_dir>/telemetry`` (raises TelemetryError if absent)."""
    root = Path(run_dir)
    tdir = root / TELEMETRY_DIRNAME
    if not tdir.is_dir():
        raise TelemetryError(
            f"no telemetry artifacts under {root} — re-run the scenario "
            f"with --telemetry to record them")
    run = RunTelemetry(root=root)
    campaign = tdir / CAMPAIGN_FILE
    if campaign.exists():
        records = export.read_jsonl(campaign)
        for record in records:
            if record.get("type") == "meta":
                run.campaign_meta = record
                break
        run.campaign_spans = export.records_to_spans(records)
        run.campaign_metrics = export.records_to_metrics(records)
    for path in sorted(tdir.glob("shard-*.jsonl")):
        shard = _parse_shard_file(path)
        run.shards[shard.shard] = shard
    quarantine = root / QUARANTINE_FILE
    if quarantine.exists():
        run.quarantined = sorted(
            export.read_jsonl(quarantine),
            key=lambda record: record.get("shard", -1))
    if not run.campaign_spans and not run.shards:
        raise TelemetryError(f"telemetry directory {tdir} holds no records")
    return run


# -- aggregation ------------------------------------------------------------

def phase_rows(spans: list[SpanRecord]) -> list[dict]:
    """Aggregate spans by name; ordered by total self-time, descending."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        if span.name == ROOT_SPAN and span.depth == 0:
            continue
        entry = totals.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.seconds
        entry[2] += span.self_seconds
    rows = [
        {"name": name, "count": int(entry[0]),
         "seconds": round(entry[1], 6), "self_seconds": round(entry[2], 6)}
        for name, entry in totals.items()
    ]
    rows.sort(key=lambda row: (-row["self_seconds"], row["name"]))
    return rows


def top_spans(spans: list[SpanRecord], limit: int = 10) -> list[SpanRecord]:
    """The slowest individual spans (root excluded), longest first."""
    candidates = [s for s in spans
                  if not (s.name == ROOT_SPAN and s.depth == 0)]
    candidates.sort(key=lambda s: (-s.seconds, s.name, s.start))
    return candidates[:limit]


def shard_rows(run: RunTelemetry) -> list[dict]:
    """Per-shard status rows, lag measured against the freshest beat."""
    stamps = [s.last_timestamp for s in run.shards.values()
              if s.last_timestamp is not None]
    latest = max(stamps) if stamps else None
    rows = []
    for shard_id in sorted(run.shards):
        shard = run.shards[shard_id]
        lag = None
        if not shard.complete and latest is not None \
                and shard.last_timestamp is not None:
            lag = round(latest - shard.last_timestamp, 3)
        rows.append({
            "shard": shard_id,
            "iterations": shard.iterations,
            "coverage": shard.last_coverage,
            "rss_kb": shard.rss_kb,
            "findings": shard.findings,
            "complete": shard.complete,
            "lag_seconds": lag,
            "attempt": shard.attempt,
        })
    return rows


def summarize(run: RunTelemetry) -> TelemetrySummary:
    spans = run.all_spans()
    return TelemetrySummary(
        wall_seconds=run.wall_seconds(),
        tracked_seconds=run.tracked_seconds(),
        phases=phase_rows(spans),
        shards=shard_rows(run),
        metrics=run.merged_metrics().to_dict(),
    )


def summarize_recorder(recorder: Recorder) -> TelemetrySummary:
    """Summarize an in-memory recorder (runs without a run directory)."""
    spans = recorder.spans()
    run = RunTelemetry(root=Path("."), campaign_spans=spans,
                       campaign_metrics=recorder.metrics)
    return TelemetrySummary(
        wall_seconds=run.wall_seconds(),
        tracked_seconds=run.tracked_seconds(),
        phases=phase_rows(spans),
        shards=[],
        metrics=recorder.metrics.to_dict(),
    )


# -- rendering --------------------------------------------------------------

def stats_to_dict(run: RunTelemetry, top: int = 10) -> dict:
    summary = summarize(run)
    payload = summary.to_dict()
    payload["run_dir"] = str(run.root)
    payload["top_spans"] = [
        {"name": s.name, "start": round(s.start, 6),
         "seconds": round(s.seconds, 6)}
        for s in top_spans(run.all_spans(), top)
    ]
    return payload


def render_stats(run: RunTelemetry, top: int = 10) -> str:
    """The human-facing ``repro stats`` page."""
    summary = summarize(run)
    out: list[str] = []
    scenario = run.campaign_meta.get("scenario")
    title = f"telemetry — {run.root}"
    if scenario:
        title += f" (scenario {scenario})"
    out.append(title)
    out.append(f"wall-clock   : {summary.wall_seconds:.3f} s")
    out.append(f"span-tracked : {summary.tracked_seconds:.3f} s "
               f"({summary.coverage:.0%} of wall)")
    out.append("")

    rows = [[p["name"], str(p["count"]), f"{p['seconds']:.3f}",
             f"{p['self_seconds']:.3f}",
             (f"{p['self_seconds'] / summary.wall_seconds:.1%}"
              if summary.wall_seconds else "-")]
            for p in summary.phases]
    out.append(ascii_table(
        ["phase", "count", "total s", "self s", "% wall"], rows,
        title="phase breakdown (by self-time)"))
    out.append("")

    slow = [[s.name, f"{s.start:.3f}", f"{s.seconds:.4f}"]
            for s in top_spans(run.all_spans(), top)]
    out.append(ascii_table(["span", "start s", "seconds"], slow,
                           title=f"top {top} slowest spans"))

    if summary.shards:
        out.append("")
        shard_table = []
        for row in summary.shards:
            if row["complete"]:
                status = "complete"
            elif row["lag_seconds"] is not None and row["lag_seconds"] > 0:
                status = f"lagging {row['lag_seconds']:.1f}s"
            else:
                status = "incomplete"
            if row.get("attempt", 1) > 1:
                status += f" (attempt {row['attempt']})"
            shard_table.append([
                str(row["shard"]), str(row["iterations"]),
                str(row["coverage"]), str(row["rss_kb"]),
                str(row["findings"]), status,
            ])
        out.append(ascii_table(
            ["shard", "iterations", "coverage", "rss kb", "findings",
             "status"],
            shard_table, title="shard heartbeats"))

    if run.quarantined:
        out.append("")
        out.append(ascii_table(
            ["shard", "attempts", "failure", "last error"],
            [[str(q.get("shard")), str(q.get("attempts")),
              str(q.get("failure")), str(q.get("error"))]
             for q in run.quarantined],
            title="quarantined shards (run completed DEGRADED "
                  "without them)"))

    metrics = run.merged_metrics()
    if not metrics.is_empty():
        out.append("")
        metric_rows = []
        for name in sorted(metrics.counters):
            value = metrics.counters[name]
            rendered = str(int(value)) if value == int(value) else f"{value:g}"
            metric_rows.append([name, "counter", rendered])
        for name in sorted(metrics.gauges):
            metric_rows.append([name, "gauge", f"{metrics.gauges[name]:g}"])
        for name in sorted(metrics.histograms):
            stat = metrics.histograms[name]
            metric_rows.append([
                name, "histogram",
                f"n={stat.count} mean={stat.mean:g} "
                f"min={stat.minimum:g} max={stat.maximum:g}",
            ])
        out.append(ascii_table(["metric", "kind", "value"], metric_rows,
                               title="metrics (merged across shards)"))
    return "\n".join(out)


def validate_run(run_dir: Path | str, schema_path: Path | str) -> list[str]:
    """Validate a run's telemetry and resilience records against the
    checked-in schema: every ``telemetry/*.jsonl`` file, the run's
    ``quarantine.jsonl``, and each ``checkpoints/shard-*.json``."""
    schema = export.load_schema(schema_path)
    root = Path(run_dir)
    tdir = root / TELEMETRY_DIRNAME
    if not tdir.is_dir():
        raise TelemetryError(f"no telemetry artifacts under {run_dir}")
    errors: list[str] = []
    for path in sorted(tdir.glob("*.jsonl")):
        records = export.read_jsonl(path)
        errors.extend(export.validate_records(records, schema,
                                              source=path.name))
    quarantine = root / QUARANTINE_FILE
    if quarantine.exists():
        errors.extend(export.validate_records(
            export.read_jsonl(quarantine), schema,
            source=QUARANTINE_FILE))
    checkpoint_dir = root / CHECKPOINT_DIRNAME
    if checkpoint_dir.is_dir():
        for path in sorted(checkpoint_dir.glob("shard-*.json")):
            source = f"{CHECKPOINT_DIRNAME}/{path.name}"
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                errors.append(f"{source}: invalid JSON ({exc})")
                continue
            errors.extend(export.validate_records([record], schema,
                                                  source=source))
    summary = tdir / SUMMARY_FILE
    if summary.exists():
        try:
            json.loads(summary.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            errors.append(f"{SUMMARY_FILE}: invalid JSON ({exc})")
    return errors
