"""Named counters, gauges, and histograms for campaign telemetry.

A :class:`MetricSet` is the value-side companion to the span recorder:
spans say where wall-clock went, metrics say how much work happened
(iterations, findings by detector, memo hits, events examined, LP
coverage, per-mutation-operator yield).

Merging follows the :class:`repro.core.online.OnlineStats` discipline —
field-wise addition, commutative and associative — so per-shard metric
sets aggregate into exactly the campaign-level set regardless of shard
order or ``--jobs`` count:

* **counters** add,
* **histograms** add (count and total sum; min/max fold), and
* **gauges** merge by ``max`` — the one deliberate deviation, because a
  gauge is a level, not a flow.  Every gauge we emit (LP coverage %,
  corpus size) is monotone within a shard, so ``max`` picks each
  shard's final value and the merge stays order-independent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class HistogramStat:
    """Streaming summary of an observed distribution (no buckets).

    Count/total/min/max is all the phase tables need, and unlike
    bucketed histograms it merges exactly.
    """

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "HistogramStat") -> "HistogramStat":
        out = HistogramStat(self.count + other.count, self.total + other.total)
        lows = [v for v in (self.minimum, other.minimum) if v is not None]
        highs = [v for v in (self.maximum, other.maximum) if v is not None]
        out.minimum = min(lows) if lows else None
        out.maximum = max(highs) if highs else None
        return out

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramStat":
        return cls(
            count=int(data.get("count", 0)),
            total=float(data.get("total", 0.0)),
            minimum=data.get("min"),
            maximum=data.get("max"),
        )


@dataclass
class MetricSet:
    """A thread-safe bag of named counters, gauges, and histograms."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramStat] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            stat = self.histograms.get(name)
            if stat is None:
                stat = self.histograms[name] = HistogramStat()
            stat.observe(value)

    # -- aggregation --------------------------------------------------------

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def merge(self, *others: "MetricSet") -> "MetricSet":
        """Return a new set folding ``others`` into ``self`` (additive)."""
        out = MetricSet(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={k: v.merged(HistogramStat())
                        for k, v in self.histograms.items()},
        )
        for other in others:
            for name, value in other.counters.items():
                out.counters[name] = out.counters.get(name, 0) + value
            for name, value in other.gauges.items():
                have = out.gauges.get(name)
                out.gauges[name] = value if have is None else max(have, value)
            for name, stat in other.histograms.items():
                have = out.histograms.get(name)
                out.histograms[name] = (stat.merged(HistogramStat())
                                        if have is None else have.merged(stat))
        return out

    # -- codec --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].to_dict()
                           for k in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricSet":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={k: HistogramStat.from_dict(v)
                        for k, v in data.get("histograms", {}).items()},
        )
