"""Campaign telemetry: spans, metrics, heartbeats, run observability.

A zero-dependency tracing + metrics layer threaded through every phase
of a campaign.  Disabled by default — the process-wide recorder is a
no-op singleton until :func:`enable` swaps a real one in — and
guaranteed inert: telemetry never touches RNG or program flow, so
fixed-seed campaign artifacts are byte-identical with it on or off
(pinned by tests and the CI telemetry job).

Layers:

* :mod:`repro.telemetry.spans` — hierarchical wall-clock spans and the
  swap-in :class:`Recorder` (``span`` records-when-on, ``timed``
  always measures).
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms with an
  additive ``merge()`` matching the ``OnlineStats`` discipline.
* :mod:`repro.telemetry.export` — JSONL event log, Prometheus text,
  the compact :class:`TelemetrySummary`, and the mini schema
  validator.
* :mod:`repro.telemetry.heartbeat` — per-shard ``shard-<k>.jsonl``
  writers (iteration-cadenced heartbeats + final span/metric dump).
* :mod:`repro.telemetry.runstats` — loads a run directory's telemetry
  into the queryable layer behind ``python -m repro stats``.

See docs/observability.md for the span taxonomy and metric names.
"""

from repro.telemetry.export import (
    TelemetryError,
    TelemetrySummary,
    complete_record,
    heartbeat_record,
    load_schema,
    meta_record,
    metric_records,
    read_jsonl,
    records_to_metrics,
    records_to_spans,
    render_prometheus,
    validate_records,
    write_jsonl,
)
from repro.telemetry.heartbeat import HeartbeatWriter, rss_kb, shard_filename
from repro.telemetry.metrics import HistogramStat, MetricSet
from repro.telemetry.runstats import (
    CAMPAIGN_FILE,
    SUMMARY_FILE,
    TELEMETRY_DIRNAME,
    RunTelemetry,
    load_run_telemetry,
    render_stats,
    stats_to_dict,
    summarize,
    summarize_recorder,
    validate_run,
)
from repro.telemetry.spans import (
    NullRecorder,
    Recorder,
    SpanRecord,
    Stopwatch,
    count,
    disable,
    enable,
    enabled,
    gauge,
    observe,
    recorder,
    span,
    timed,
)

__all__ = [
    "CAMPAIGN_FILE",
    "HeartbeatWriter",
    "HistogramStat",
    "MetricSet",
    "NullRecorder",
    "Recorder",
    "RunTelemetry",
    "SUMMARY_FILE",
    "SpanRecord",
    "Stopwatch",
    "TELEMETRY_DIRNAME",
    "TelemetryError",
    "TelemetrySummary",
    "complete_record",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "heartbeat_record",
    "load_run_telemetry",
    "load_schema",
    "meta_record",
    "metric_records",
    "observe",
    "read_jsonl",
    "recorder",
    "records_to_metrics",
    "records_to_spans",
    "render_prometheus",
    "render_stats",
    "rss_kb",
    "shard_filename",
    "span",
    "stats_to_dict",
    "summarize",
    "summarize_recorder",
    "timed",
    "validate_records",
    "validate_run",
    "write_jsonl",
]
