"""Golden reference model: an in-order RV64IM + Zicsr instruction-set
simulator and the sparse memory substrate shared with the OoO core.

TheHuzz-style fuzzers (one of the baselines the paper compares against)
detect bugs by diffing the processor-under-test's committed trace against
a golden model; Specure's key claim is that it needs *no* golden model.
We build one anyway — it powers the TheHuzz baseline, and co-simulation
against it is the strongest functional test of our out-of-order core.
"""

from repro.golden.memory import SparseMemory
from repro.golden.iss import Iss, IssConfig, CommitRecord

__all__ = ["SparseMemory", "Iss", "IssConfig", "CommitRecord"]
