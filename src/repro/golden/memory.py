"""Sparse little-endian byte-addressable memory.

Shared by the golden-model ISS and the out-of-order core (as the backing
store behind the L1 data cache).  Unwritten locations read as a
deterministic pseudo-random-but-fixed fill derived from the address, so
that "uninitialised" memory is reproducible across runs — fuzzing
campaigns must be pure functions of their seeds.
"""

from __future__ import annotations

from repro.utils.bitvec import mask, sext, truncate


class SparseMemory:
    """Byte-granular sparse memory over the full 64-bit address space."""

    def __init__(self, fill_seed: int = 0):
        self._bytes: dict[int, int] = {}
        self._fill_seed = fill_seed & mask(64)

    def copy(self) -> "SparseMemory":
        """An independent copy (same fill seed, same written bytes)."""
        clone = SparseMemory(self._fill_seed)
        clone._bytes = dict(self._bytes)
        return clone

    def _background(self, address: int) -> int:
        """Deterministic fill byte for a never-written address."""
        mixed = (address * 0x9E3779B97F4A7C15 + self._fill_seed) & mask(64)
        mixed ^= mixed >> 29
        return mixed & 0xFF

    def read_byte(self, address: int) -> int:
        address &= mask(64)
        existing = self._bytes.get(address)
        if existing is not None:
            return existing
        return self._background(address)

    def write_byte(self, address: int, value: int) -> None:
        self._bytes[address & mask(64)] = value & 0xFF

    def read(self, address: int, size: int, signed: bool = False) -> int:
        """Read ``size`` bytes little-endian; optionally sign-extend to 64."""
        value = 0
        for offset in range(size):
            value |= self.read_byte(address + offset) << (8 * offset)
        if signed:
            return sext(value, 64, from_width=8 * size)
        return value

    def write(self, address: int, value: int, size: int) -> None:
        """Write the low ``size`` bytes of ``value`` little-endian."""
        value = truncate(value, 8 * size)
        for offset in range(size):
            self.write_byte(address + offset, (value >> (8 * offset)) & 0xFF)

    def load_words(self, base: int, words: list[int]) -> None:
        """Store 32-bit words contiguously from ``base`` (program loading)."""
        for index, word in enumerate(words):
            self.write(base + 4 * index, word, 4)

    def written_addresses(self) -> set[int]:
        """Addresses that have been explicitly written (for assertions)."""
        return set(self._bytes)

    def __contains__(self, address: int) -> bool:
        return (address & mask(64)) in self._bytes
