"""In-order RV64IM + Zicsr instruction-set simulator (the golden model).

Architectural semantics only: no pipeline, no speculation, no caches.
Given the same program and initial memory, the out-of-order core's
committed architectural state must equal this simulator's final state
(co-simulation tests assert exactly that), and the TheHuzz baseline uses
per-instruction :class:`CommitRecord` traces from here as its
golden-reference stream.

The custom Specure-emulation CSRs behave as plain read/write storage at
this level — their *microarchitectural* behaviour (the (M)WAIT timer, the
Zenbleed rollback suppression) exists only in the OoO core, which is the
whole point: those effects are invisible to an architectural golden model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.golden.memory import SparseMemory
from repro.isa.instructions import DecodedInstruction, ExecClass, decode
from repro.isa.registers import ALL_CSRS, csr_by_address
from repro.utils.bitvec import mask, sext, to_signed, to_unsigned, truncate

_M64 = mask(64)


@lru_cache(maxsize=512)
def _predecoded_image(blob: bytes) -> tuple[DecodedInstruction, ...]:
    """A program byte image decoded once, shared across ISS instances.

    Contract evaluation re-runs the golden model constantly (base
    trace, residue filter, wrong-path shadows, variant models); keying
    the decoded image on the instruction bytes means each distinct
    program pays instruction decode once per process, not once per run.
    """
    return tuple(
        decode(int.from_bytes(blob[i:i + 4], "little"))
        for i in range(0, len(blob), 4)
    )

#: Memory access size per load/store mnemonic: (bytes, signed).
_ACCESS = {
    "lb": (1, True), "lh": (2, True), "lw": (4, True), "ld": (8, False),
    "lbu": (1, False), "lhu": (2, False), "lwu": (4, False),
    "sb": 1, "sh": 2, "sw": 4, "sd": 8,
}


def access_size(mnemonic: str) -> int:
    """Bytes moved by a load/store mnemonic (shared access-size table)."""
    spec = _ACCESS[mnemonic]
    return spec[0] if isinstance(spec, tuple) else spec


@dataclass(frozen=True)
class CommitRecord:
    """One architecturally committed instruction, golden-trace style."""

    pc: int
    word: int
    rd: int | None
    rd_value: int | None
    csr: int | None = None
    csr_value: int | None = None
    store_address: int | None = None
    store_value: int | None = None


@dataclass
class IssConfig:
    """Execution bounds for one ISS run.

    A non-zero ``protected_size`` arms an access-fault region at
    ``protected_base``: any architectural load or store overlapping it
    halts the machine with :attr:`Iss.faulted` set and **no** effects —
    no register write, no memory write, no PC advance — mirroring a
    precise exception raised at commit.
    """

    base_address: int = 0x8000_0000
    max_steps: int = 10_000
    protected_base: int = 0
    protected_size: int = 0


class Iss:
    """The architectural simulator.

    Usage::

        iss = Iss(memory)
        iss.load_program(words)
        trace = iss.run()
    """

    def __init__(self, memory: SparseMemory | None = None,
                 config: IssConfig | None = None):
        self.config = config or IssConfig()
        self.memory = memory if memory is not None else SparseMemory()
        self.regs = [0] * 32
        self.pc = self.config.base_address
        self.csrs: dict[int, int] = {spec.address: 0 for spec in ALL_CSRS}
        self.halted = False
        #: Set (with :attr:`fault_address`) when the run ended in an
        #: access fault on the protected region; the faulting
        #: instruction has no architectural effects.
        self.faulted = False
        self.fault_address: int | None = None
        self.instret = 0
        self._program_end = self.config.base_address
        #: Pre-decoded fetch fast path (see :meth:`attach_predecoded`):
        #: while the code region is untouched, :meth:`peek_decode` serves
        #: instructions from this image instead of reassembling and
        #: decoding four memory bytes per step.
        self._decoded: tuple[DecodedInstruction, ...] | None = None
        self._decoded_base = 0
        self._code_clean = False
        #: Optional memory-access observation hook,
        #: ``on_access(kind, address, value, size)`` with kind ``"load"``
        #: or ``"store"`` — how the contract layer (:mod:`repro.contracts`)
        #: derives observation clauses from architectural execution
        #: without this model knowing what a contract is.
        self.on_access = None

    def load_program(self, words: list[int], base: int | None = None) -> None:
        """Load instruction words and point the PC at them."""
        base = self.config.base_address if base is None else base
        self.memory.load_words(base, words)
        self.pc = base
        self._program_end = base + 4 * len(words)

    def attach_predecoded(self, decoded: tuple[DecodedInstruction, ...],
                          base: int, clean: bool = True) -> None:
        """Arm the pre-decoded fetch fast path for ``[base, base+4n)``.

        Only valid when the caller guarantees the memory words in that
        range equal the decoded image (and stay equal except through
        this ISS's own stores, which flip the flag).  External writes to
        the memory object after arming are *not* observed — callers that
        mutate memory directly must not arm the fast path.
        """
        self._decoded = decoded
        self._decoded_base = base
        self._code_clean = clean

    def peek_decode(self) -> DecodedInstruction:
        """The decoded instruction at the current PC, without executing.

        Serves the pre-decoded image while the code region is clean;
        falls back to reading and decoding live memory otherwise (the
        self-modifying-code path)."""
        pc = self.pc
        if self._code_clean:
            offset = pc - self._decoded_base
            if 0 <= offset and pc < self._program_end and not offset & 3:
                return self._decoded[offset >> 2]
        return decode(self.memory.read(pc, 4))

    @classmethod
    def for_program(cls, program, base_address: int = 0x8000_0000,
                    max_steps: int | None = None,
                    protected_base: int = 0,
                    protected_size: int = 0) -> "Iss":
        """A fresh ISS loaded exactly the way the OoO core loads a
        :class:`~repro.fuzz.input.TestProgram`: background fill from the
        program's data seed, instruction words at ``base_address``, the
        memory overlay applied on top, registers from ``reg_init`` — and
        the pre-decoded fetch fast path armed (unless the overlay
        rewrites the code region).  ``max_steps`` defaults to the
        program's own cycle budget; ``protected_base``/``protected_size``
        arm the access-fault region (see :class:`IssConfig`).
        """
        memory = SparseMemory(fill_seed=program.data_seed)
        memory.load_words(base_address, program.words)
        for address, value in program.memory_overlay.items():
            memory.write_byte(address, value)
        steps = max(program.max_cycles, 1) if max_steps is None else max_steps
        iss = cls(memory, IssConfig(base_address=base_address,
                                    max_steps=steps,
                                    protected_base=protected_base,
                                    protected_size=protected_size))
        iss.pc = base_address
        iss._program_end = base_address + 4 * len(program.words)
        iss.regs = list(program.reg_init)
        clean = not any(
            base_address <= address < iss._program_end
            for address in program.memory_overlay
        )
        iss.attach_predecoded(_predecoded_image(program.to_bytes()),
                              base_address, clean=clean)
        return iss

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & _M64

    def read_csr(self, address: int) -> int:
        return self.csrs.get(address, 0)

    def write_csr(self, address: int, value: int) -> None:
        try:
            spec = csr_by_address(address)
        except KeyError:
            return  # Unimplemented CSRs are write-ignored.
        if spec.writable:
            self.csrs[address] = value & _M64

    def run(self, max_steps: int | None = None) -> list[CommitRecord]:
        """Run until halt / PC leaves the program / step budget; return trace."""
        budget = max_steps if max_steps is not None else self.config.max_steps
        trace: list[CommitRecord] = []
        for _ in range(budget):
            if self.halted or not self._pc_in_program():
                break
            trace.append(self.step())
        return trace

    def _pc_in_program(self) -> bool:
        return self.config.base_address <= self.pc < self._program_end

    def step(self) -> CommitRecord:
        """Execute one instruction and return its commit record.

        The counter CSRs (mcycle/minstret/...) are *not* auto-updated:
        free-running counters differ between an ISS and a pipelined core
        by construction, so both models treat them as plain storage and
        expose instruction counts through :attr:`instret` instead.
        """
        pc = self.pc
        inst = self.peek_decode()
        record = self._execute(inst, pc)
        if not self.faulted:
            # A faulting access never retires.
            self.instret += 1
        return record

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def _execute(self, inst: DecodedInstruction, pc: int) -> CommitRecord:
        cls = inst.exec_class
        next_pc = (pc + 4) & _M64
        rd_value = None
        csr_addr = None
        csr_value = None
        store_address = None
        store_value = None

        if cls is ExecClass.ALU:
            rd_value = self._alu(inst, pc)
            if inst.dest() is not None:
                self.write_reg(inst.rd, rd_value)
        elif cls is ExecClass.MUL or cls is ExecClass.DIV:
            rd_value = self._muldiv(inst)
            if inst.dest() is not None:
                self.write_reg(inst.rd, rd_value)
        elif cls is ExecClass.LOAD:
            address = (self.regs[inst.rs1] + to_signed(inst.imm, 64)) & _M64
            size, signed = _ACCESS[inst.mnemonic]
            if self._faulting(address, size):
                return self._raise_fault(pc, inst, address)
            rd_value = self.memory.read(address, size, signed=signed) & _M64
            if self.on_access is not None:
                self.on_access("load", address, rd_value, size)
            if inst.dest() is not None:
                self.write_reg(inst.rd, rd_value)
        elif cls is ExecClass.STORE:
            store_address = (self.regs[inst.rs1] + to_signed(inst.imm, 64)) & _M64
            size = _ACCESS[inst.mnemonic]
            if self._faulting(store_address, size):
                return self._raise_fault(pc, inst, store_address)
            store_value = truncate(self.regs[inst.rs2], 8 * size)
            if self.on_access is not None:
                self.on_access("store", store_address, store_value, size)
            if (self._code_clean
                    and store_address < self._program_end
                    and store_address + size > self._decoded_base):
                # Self-modifying store: the pre-decoded image is stale.
                self._code_clean = False
            self.memory.write(store_address, self.regs[inst.rs2], size)
        elif cls is ExecClass.BRANCH:
            if self._branch_taken(inst):
                next_pc = (pc + to_signed(inst.imm, 64)) & _M64
        elif cls is ExecClass.JAL:
            rd_value = (pc + 4) & _M64
            if inst.dest() is not None:
                self.write_reg(inst.rd, rd_value)
            next_pc = (pc + to_signed(inst.imm, 64)) & _M64
        elif cls is ExecClass.JALR:
            rd_value = (pc + 4) & _M64
            target = (self.regs[inst.rs1] + to_signed(inst.imm, 64)) & _M64 & ~1
            if inst.dest() is not None:
                self.write_reg(inst.rd, rd_value)
            next_pc = target
        elif cls is ExecClass.CSR:
            csr_addr = inst.csr
            rd_value, csr_value = self._csr_op(inst)
        elif cls is ExecClass.SYSTEM:
            self.halted = True
        # FENCE and ILLEGAL retire as no-ops.

        self.pc = next_pc
        return CommitRecord(
            pc=pc, word=inst.word,
            rd=inst.dest(), rd_value=rd_value if inst.dest() is not None else None,
            csr=csr_addr, csr_value=csr_value,
            store_address=store_address, store_value=store_value,
        )

    def _faulting(self, address: int, size: int) -> bool:
        psize = self.config.protected_size
        if psize <= 0:
            return False
        pbase = self.config.protected_base
        return address < pbase + psize and address + size > pbase

    def _raise_fault(self, pc: int, inst: DecodedInstruction,
                     address: int) -> CommitRecord:
        """Halt on an access fault: no effects, PC stays at the fault."""
        self.halted = True
        self.faulted = True
        self.fault_address = address
        return CommitRecord(pc=pc, word=inst.word, rd=None, rd_value=None)

    def _alu(self, inst: DecodedInstruction, pc: int) -> int:
        return alu_value(inst, self.regs[inst.rs1], self.regs[inst.rs2], pc)

    def _muldiv(self, inst: DecodedInstruction) -> int:
        return _muldiv_value(inst.mnemonic, self.regs[inst.rs1], self.regs[inst.rs2])

    def _branch_taken(self, inst: DecodedInstruction) -> bool:
        a, b = self.regs[inst.rs1], self.regs[inst.rs2]
        return branch_taken(inst.mnemonic, a, b)

    def _csr_op(self, inst: DecodedInstruction) -> tuple[int, int | None]:
        """Execute a CSR instruction; returns (old value → rd, new value)."""
        old = self.read_csr(inst.csr)
        name = inst.mnemonic
        operand = inst.rs1 if name.endswith("i") else self.regs[inst.rs1]
        new: int | None
        if name in ("csrrw", "csrrwi"):
            new = operand & _M64
        elif name in ("csrrs", "csrrsi"):
            new = old | operand if operand else None
        else:  # csrrc / csrrci
            new = old & ~operand & _M64 if operand else None
        if inst.dest() is not None:
            self.write_reg(inst.rd, old)
        if new is not None:
            self.write_csr(inst.csr, new)
        return old, new


def branch_taken(mnemonic: str, a: int, b: int) -> bool:
    """Shared branch-comparison semantics (also used by the OoO core)."""
    if mnemonic == "beq":
        return a == b
    if mnemonic == "bne":
        return a != b
    if mnemonic == "blt":
        return to_signed(a, 64) < to_signed(b, 64)
    if mnemonic == "bge":
        return to_signed(a, 64) >= to_signed(b, 64)
    if mnemonic == "bltu":
        return a < b
    if mnemonic == "bgeu":
        return a >= b
    raise KeyError(f"not a branch: {mnemonic}")


def _alu_rr(name: str, a: int, b: int) -> int:
    """Register-register ALU semantics shared via :func:`alu_value`."""
    if name == "add":
        return (a + b) & _M64
    if name == "sub":
        return (a - b) & _M64
    if name == "sll":
        return (a << (b & 0x3F)) & _M64
    if name == "slt":
        return 1 if to_signed(a, 64) < to_signed(b, 64) else 0
    if name == "sltu":
        return 1 if a < b else 0
    if name == "xor":
        return a ^ b
    if name == "srl":
        return a >> (b & 0x3F)
    if name == "sra":
        return to_unsigned(to_signed(a, 64) >> (b & 0x3F), 64)
    if name == "or":
        return a | b
    if name == "and":
        return a & b
    if name == "addw":
        return sext((a + b) & mask(32), 64, from_width=32)
    if name == "subw":
        return sext((a - b) & mask(32), 64, from_width=32)
    if name == "sllw":
        return sext((a << (b & 0x1F)) & mask(32), 64, from_width=32)
    if name == "srlw":
        return sext((a & mask(32)) >> (b & 0x1F), 64, from_width=32)
    if name == "sraw":
        return to_unsigned(to_signed(a, 32) >> (b & 0x1F), 64)
    raise KeyError(f"unknown ALU op: {name}")


def alu_value(inst: DecodedInstruction, rs1_value: int, rs2_value: int, pc: int) -> int:
    """Pure-function ALU semantics for a decoded instruction.

    The OoO core's execute stage calls this with *physical register*
    operand values, so ALU behaviour is defined in exactly one place.
    """
    name = inst.mnemonic
    if name == "lui":
        return sext(inst.imm << 12, 64, from_width=32)
    if name == "auipc":
        return (pc + sext(inst.imm << 12, 64, from_width=32)) & _M64
    imm = to_signed(inst.imm, 64)
    a = rs1_value
    if name == "addi":
        return (a + imm) & _M64
    if name == "slti":
        return 1 if to_signed(a, 64) < imm else 0
    if name == "sltiu":
        return 1 if a < to_unsigned(imm, 64) else 0
    if name == "xori":
        return a ^ to_unsigned(imm, 64)
    if name == "ori":
        return a | to_unsigned(imm, 64)
    if name == "andi":
        return a & to_unsigned(imm, 64)
    if name == "slli":
        return (a << inst.shamt) & _M64
    if name == "srli":
        return a >> inst.shamt
    if name == "srai":
        return to_unsigned(to_signed(a, 64) >> inst.shamt, 64)
    if name == "addiw":
        return sext((a + imm) & mask(32), 64, from_width=32)
    if name == "slliw":
        return sext((a << inst.shamt) & mask(32), 64, from_width=32)
    if name == "srliw":
        return sext((a & mask(32)) >> inst.shamt, 64, from_width=32)
    if name == "sraiw":
        return to_unsigned(to_signed(a, 32) >> inst.shamt, 64)
    return _alu_rr(name, a, rs2_value)


def _div_toward_zero(dividend: int, divisor: int) -> int:
    """Signed integer division rounding toward zero (RISC-V semantics).

    Python's ``//`` rounds toward negative infinity, so this must be done
    on magnitudes; float division would lose precision at 64 bits.
    """
    quotient = abs(dividend) // abs(divisor)
    if (dividend < 0) != (divisor < 0):
        return -quotient
    return quotient


def _muldiv_value(name: str, a: int, b: int) -> int:
    """RV64M semantics including the spec's division edge cases."""
    sa, sb = to_signed(a, 64), to_signed(b, 64)
    if name == "mul":
        return (a * b) & _M64
    if name == "mulh":
        return to_unsigned((sa * sb) >> 64, 64)
    if name == "mulhsu":
        return to_unsigned((sa * b) >> 64, 64)
    if name == "mulhu":
        return (a * b) >> 64 & _M64
    if name == "mulw":
        return sext((a * b) & mask(32), 64, from_width=32)
    if name == "div":
        if sb == 0:
            return _M64  # -1
        if sa == -(1 << 63) and sb == -1:
            return to_unsigned(sa, 64)
        return to_unsigned(_div_toward_zero(sa, sb), 64)
    if name == "divu":
        return _M64 if b == 0 else a // b
    if name == "rem":
        if sb == 0:
            return a
        if sa == -(1 << 63) and sb == -1:
            return 0
        return to_unsigned(sa - _div_toward_zero(sa, sb) * sb, 64)
    if name == "remu":
        return a if b == 0 else a % b
    sa32, sb32 = to_signed(a, 32), to_signed(b, 32)
    a32, b32 = a & mask(32), b & mask(32)
    if name == "divw":
        if sb32 == 0:
            return _M64
        if sa32 == -(1 << 31) and sb32 == -1:
            return to_unsigned(sa32, 64)
        return to_unsigned(_div_toward_zero(sa32, sb32), 64)
    if name == "divuw":
        return _M64 if b32 == 0 else sext(a32 // b32, 64, from_width=32)
    if name == "remw":
        if sb32 == 0:
            return to_unsigned(sa32, 64)
        if sa32 == -(1 << 31) and sb32 == -1:
            return 0
        return to_unsigned(sa32 - _div_toward_zero(sa32, sb32) * sb32, 64)
    if name == "remuw":
        return sext(a32 if b32 == 0 else a32 % b32, 64, from_width=32)
    raise KeyError(f"unknown mul/div op: {name}")


def muldiv_value(inst: DecodedInstruction, rs1_value: int, rs2_value: int) -> int:
    """Pure-function M-extension semantics for the OoO execute stage."""
    return _muldiv_value(inst.mnemonic, rs1_value, rs2_value)
