"""``python -m repro`` — a one-command self-check.

Prints the library version, runs the offline phase on the default
processor-under-test, verifies all four studied vulnerabilities through
the detection pipeline, and prints the experiment registry.
"""

from __future__ import annotations

import sys

from repro import BoomConfig, Specure, VulnConfig, __version__
from repro.core.online import OnlinePhase
from repro.fuzz.triggers import all_triggers
from repro.harness.experiments import render_registry


def main() -> int:
    print(f"repro {__version__} — Specure (DAC'24) reproduction")
    print()

    specure = Specure(BoomConfig.small(VulnConfig.all()), seed=1,
                      monitor_dcache=True)
    print(specure.offline().summary())
    print()

    online = OnlinePhase(specure.core, specure.offline(), monitor_dcache=True)
    failures = 0
    for kind, program in all_triggers().items():
        _, reports = online.run_once(program)
        detected = kind in {report.kind for report in reports}
        print(f"  {'ok  ' if detected else 'FAIL'} {kind}")
        failures += 0 if detected else 1
    print()
    print(render_registry())
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
