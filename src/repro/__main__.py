"""``python -m repro`` — scenario campaigns, self-check, and replay.

Subcommands:

``run <scenario>``
    Run a registered scenario (or a ``.toml``/``.json`` scenario file)
    and persist its artifacts under a run directory (``--out``, default
    ``runs/<name>``).  ``--iterations``/``--shards``/``--seed``/``--jobs``
    /``--detector`` override the spec's knobs for quick experiments —
    ``--detector both`` cross-validates the IFT detector against the
    contract detector on any scenario.
``list-scenarios``
    Print the scenario registry (``--format json`` for the
    machine-readable metadata, specs included).
``stats <dir>``
    Query a run directory's telemetry (recorded with ``--telemetry``):
    phase-time breakdown, top-N slowest spans, per-shard heartbeat lag,
    merged metric dump — ``--format json`` for tooling, ``--validate``
    to check the event logs against ``docs/telemetry.schema.json``.
``analyze <target>``
    Static analysis (no fuzzing): RTL lint plus IFG taint reachability
    over a registered design (``listing-1``/``pipeline-cpu``/
    ``spec-cpu``/``small``/``medium``/``large``), a scenario name, or a
    ``.toml``/``.json`` scenario file.  ``--format json`` emits the
    machine-readable report; ``--fail-on warn|error`` sets the severity
    at which active findings fail the command (exit 1).
``resume <dir>``
    Continue an interrupted campaign; completed shards load from the
    store, so the final report is byte-identical to an uninterrupted run.
    Quarantined shards get a fresh retry budget.
``replay <dir>``
    Re-confirm every stored finding by running its (minimized) trigger
    program once — a regression check with no fuzzing.
``bench``
    Measure the per-iteration hot path of one or more scenarios
    (default: quickstart) under a fixed iteration or wall-clock budget;
    emits ``BENCH_pr3.json`` (fresh numbers next to the committed
    pre-PR baseline) and, with ``--check``, gates against the artifact
    committed in the repository.
``selfcheck``
    The original one-command smoke test (also the default with no
    arguments): offline phase + all four studied vulnerabilities +
    the experiment registry.

Exit codes for ``run``/``resume`` (see docs/resilience.md): 0 — every
shard completed; 3 — campaign completed DEGRADED (one or more shards
quarantined after exhausting retries; report carries the degraded
banner); 1 — campaign failed outright (``on_shard_failure = "fail"``
and a shard exhausted its retries); 2 — bad scenario/store input;
130 — interrupted.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import BoomConfig, Specure, VulnConfig, __version__
from repro.core.online import DETECTORS
from repro.fuzz.triggers import all_triggers
from repro.harness.experiments import render_registry
from repro.harness.parallel import ShardExecutionError
from repro.scenarios import (
    ScenarioError,
    ScenarioSpec,
    StoreError,
    render_scenarios,
    replay_findings,
    resolve_scenario,
    resume_scenario,
    run_scenario,
)


def selfcheck(_args=None) -> int:
    """The original one-command self-check (default mode)."""
    print(f"repro {__version__} — Specure (DAC'24) reproduction")
    print()

    specure = Specure(BoomConfig.small(VulnConfig.all()), seed=1,
                      monitor_dcache=True)
    print(specure.offline().summary())
    print()

    online = specure.build_online()
    failures = 0
    for kind, program in all_triggers().items():
        _, reports = online.run_once(program)
        detected = kind in {report.kind for report in reports}
        print(f"  {'ok  ' if detected else 'FAIL'} {kind}")
        failures += 0 if detected else 1
    print()
    print(render_registry())
    return 1 if failures else 0


def _load_spec(reference: str) -> ScenarioSpec:
    """A scenario by registry name, or from a .toml/.json file path."""
    return resolve_scenario(reference)


def _default_run_dir(name: str) -> str:
    """First free directory under runs/: <name>, <name>-2, <name>-3 ..."""
    from pathlib import Path

    base = Path("runs") / name
    if not base.exists():
        return str(base)
    suffix = 2
    while (candidate := base.with_name(f"{name}-{suffix}")).exists():
        suffix += 1
    return str(candidate)


def cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.scenario)
    overrides = {
        key: value
        for key, value in (
            ("iterations", args.iterations),
            ("shards", args.shards),
            ("seed", args.seed),
            ("detector", args.detector),
            ("contract", args.contract),
            ("execution_clauses",
             tuple(args.execution_clauses)
             if args.execution_clauses is not None else None),
        )
        if value is not None
    }
    if overrides:
        spec = spec.override(**overrides)
    out = args.out or _default_run_dir(spec.name)

    started = time.perf_counter()
    try:
        outcome = run_scenario(
            spec,
            run_dir=out,
            jobs=args.jobs,
            minimize=not args.no_minimize,
            telemetry=args.telemetry,
            on_shard=lambda shard, report: print(
                f"shard {shard}: {report.fuzz.iterations} iterations, "
                f"coverage {report.fuzz.final_coverage()}, "
                f"{len(report.fuzz.findings)} finding(s)"
            ),
        )
    except KeyboardInterrupt:
        print(f"\ninterrupted — resume with: python -m repro resume {out}")
        return 130
    except ShardExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        print(f"(completed shards are persisted — resume with: "
              f"python -m repro resume {out})", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started

    if outcome.report is None:
        print(outcome.offline.summary())
    else:
        print()
        print(outcome.report.render(telemetry=outcome.telemetry))
    if outcome.telemetry is not None:
        print()
        print(f"(telemetry recorded — inspect with: "
              f"python -m repro stats {out})")
    print()
    print(f"(scenario {spec.name!r}, {elapsed:.2f}s wall clock, "
          f"artifacts in {out})")
    return _campaign_exit_code(outcome, out)


def _campaign_exit_code(outcome, directory) -> int:
    """0 when every shard completed; 3 when the campaign is degraded
    (quarantined shards are excluded from the report — the banner
    repeats at the end so it cannot scroll away)."""
    if not outcome.degraded:
        return 0
    from repro.scenarios.runner import degraded_banner

    print()
    print(degraded_banner(outcome.quarantined))
    print(f"(degraded campaign — re-run the quarantined shard(s) with: "
          f"python -m repro resume {directory})", file=sys.stderr)
    return 3


def cmd_list_scenarios(args: argparse.Namespace) -> int:
    if getattr(args, "format", "text") == "json":
        import json

        from repro.scenarios.registry import scenarios_to_dicts

        print(json.dumps(scenarios_to_dicts(), indent=2, sort_keys=True))
        return 0
    print(render_scenarios())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import (
        TelemetryError,
        load_run_telemetry,
        render_stats,
        stats_to_dict,
        validate_run,
    )

    if args.validate:
        try:
            errors = validate_run(args.directory, args.schema)
        except TelemetryError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if errors:
            for line in errors:
                print(f"SCHEMA: {line}", file=sys.stderr)
            return 1
        print(f"telemetry logs in {args.directory} conform to "
              f"{args.schema}")
        return 0

    try:
        run = load_run_telemetry(args.directory)
    except TelemetryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(stats_to_dict(run, top=args.top), indent=2,
                         sort_keys=True))
    else:
        print(render_stats(run, top=args.top))
    return 0


#: Registered Verilog designs ``analyze`` accepts by name:
#: source constant attribute on :mod:`repro.rtl.designs`, plus the
#: explicit architectural-register names for designs whose registers
#: don't follow the ISA ``x<N>`` convention.
_ANALYZE_RTL = {
    "listing-1": ("LISTING_1", None),
    "pipeline-cpu": ("PIPELINE_CPU", ["acc", "r0", "r1", "r2", "r3"]),
    "spec-cpu": ("SPEC_CPU", None),
}


def _analyze_target(target: str):
    """Resolve an ``analyze`` target to ``(name, model, source_text,
    arch_names)``.

    Registered design names win; anything else resolves through the
    scenario registry (name or ``.toml``/``.json`` path), analysing the
    scenario's PUT exactly as its campaigns would see it.
    """
    if target in _ANALYZE_RTL:
        from repro.rtl import designs
        from repro.rtl.elaborate import elaborate
        from repro.rtl.parser import parse

        attribute, arch_names = _ANALYZE_RTL[target]
        source = getattr(designs, attribute)
        return target, elaborate(parse(source)), source, arch_names
    if target in ("small", "medium", "large"):
        from repro.boom.netlist import build_boom_netlist

        config = getattr(BoomConfig, target)(VulnConfig.all())
        return f"boom-{target}", build_boom_netlist(config), None, None

    from repro.puts.base import build_put, design_of

    spec = resolve_scenario(target)
    config = spec.build_config()
    put = build_put(config)
    return design_of(config), put.offline_model(), put.static_source(), None


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_model

    name, model, source, arch_names = _analyze_target(args.target)
    report = analyze_model(model, name=name, source_text=source,
                           arch_names=arch_names)
    if args.format == "json":
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 1 if report.failed(args.fail_on) else 0


def cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf import (
        BenchError,
        baseline_for,
        check_regression,
        check_scaling,
        emit_bench,
        load_bench,
        parse_scenario_request,
        render_bench,
        render_bench_list,
        render_scaling,
        run_bench,
        run_scaling_bench,
    )

    if args.list:
        print(render_bench_list())
        return 0

    # Read the committed gate numbers *before* --out overwrites them.
    committed = None
    if args.check:
        gate_path = args.gate or args.out
        if not Path(gate_path).exists():
            print(f"error: no committed bench artifact at {gate_path} "
                  f"to gate against", file=sys.stderr)
            return 2
        try:
            committed = load_bench(gate_path)
        except BenchError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if str(gate_path) == str(args.out):
            print(f"note: --out will overwrite the gate file {gate_path} "
                  f"with this run's numbers (git checkout restores the "
                  f"committed baseline)")

    if args.telemetry_overhead:
        return _bench_telemetry_overhead(args, committed)
    if args.checkpoint_overhead:
        return _bench_checkpoint_overhead(args, committed)

    try:
        results = []
        for request in (args.scenario or ["quickstart"]):
            name, pinned = parse_scenario_request(request)
            results.append(run_bench(
                name,
                budget_s=None if pinned is not None else args.budget_s,
                iterations=pinned if pinned is not None else args.iterations,
            ))
        scaling = None
        if args.scaling_jobs:
            jobs_list = tuple(sorted({1, *args.scaling_jobs}))
            scaling = run_scaling_bench(
                scenario=args.scaling_scenario,
                shards=args.scaling_shards,
                budget_s=args.scaling_budget_s,
                jobs_list=jobs_list,
            )
    except BenchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline = baseline_for(args.out)
    print(render_bench(results, baseline=baseline))
    if scaling is not None:
        print()
        print(render_scaling(scaling))
    emit_bench(results, path=args.out, baseline=baseline, scaling=scaling)
    print(f"(bench artifact written to {args.out})")

    failures = []
    if committed is not None:
        failures.extend(check_regression(results, committed,
                                         max_regression=args.max_regression))
    if scaling is not None:
        failures.extend(check_scaling(scaling,
                                      min_speedup=args.min_scaling))
    if failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    if committed is not None:
        print(f"regression gate passed (max allowed "
              f"{args.max_regression:.0%} below committed numbers)")
    if scaling is not None:
        if scaling.speedup is not None:
            print(f"scaling gate passed (jobs={max(scaling.wall_seconds)} "
                  f"at {scaling.speedup:.2f}x >= {args.min_scaling:.2f}x, "
                  f"deterministic merges)")
        else:
            print("scaling entry recorded (single jobs count — no "
                  "speedup to gate; deterministic merges checked)")
    return 0


def _bench_telemetry_overhead(args: argparse.Namespace, committed) -> int:
    """``bench --telemetry-overhead``: pinned protocol, off vs on."""
    from repro.perf import (
        BenchError,
        baseline_for,
        check_regression,
        check_telemetry_overhead,
        emit_bench,
        parse_scenario_request,
        render_telemetry_overhead,
        run_telemetry_overhead,
    )

    request = (args.scenario or ["quickstart"])[0]
    try:
        name, pinned = parse_scenario_request(request)
        result = run_telemetry_overhead(
            scenario=name,
            iterations=pinned if pinned is not None else args.iterations,
            repeats=args.repeats,
        )
    except BenchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(render_telemetry_overhead(result))
    baseline = baseline_for(args.out)
    emit_bench([result.off, result.on], path=args.out, baseline=baseline,
               extra={"telemetry_overhead": round(result.overhead, 4)})
    print(f"(bench artifact written to {args.out})")

    failures = check_telemetry_overhead(
        result, max_overhead=args.max_telemetry_overhead)
    if committed is not None:
        failures.extend(check_regression([result.off, result.on], committed,
                                         max_regression=args.max_regression))
    if failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    print(f"telemetry-overhead gate passed "
          f"({result.overhead:+.1%} <= {args.max_telemetry_overhead:.0%})")
    return 0


def _bench_checkpoint_overhead(args: argparse.Namespace, committed) -> int:
    """``bench --checkpoint-overhead``: pinned protocol, off vs on."""
    from repro.perf import (
        BenchError,
        baseline_for,
        check_checkpoint_overhead,
        check_regression,
        emit_bench,
        parse_scenario_request,
        render_checkpoint_overhead,
        run_checkpoint_overhead,
    )

    request = (args.scenario or ["quickstart"])[0]
    try:
        name, pinned = parse_scenario_request(request)
        result = run_checkpoint_overhead(
            scenario=name,
            iterations=pinned if pinned is not None else args.iterations,
            repeats=args.repeats,
            every=args.checkpoint_every,
        )
    except BenchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(render_checkpoint_overhead(result))
    baseline = baseline_for(args.out)
    emit_bench([result.off, result.on], path=args.out, baseline=baseline,
               extra={"checkpoint_overhead": round(result.overhead, 4),
                      "checkpoint_every": result.every})
    print(f"(bench artifact written to {args.out})")

    failures = check_checkpoint_overhead(
        result, max_overhead=args.max_checkpoint_overhead)
    if committed is not None:
        failures.extend(check_regression([result.off, result.on], committed,
                                         max_regression=args.max_regression))
    if failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    print(f"checkpoint-overhead gate passed "
          f"({result.overhead:+.1%} <= {args.max_checkpoint_overhead:.0%} "
          f"at cadence {result.every})")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    try:
        outcome = resume_scenario(args.directory, jobs=args.jobs,
                                  minimize=not args.no_minimize,
                                  telemetry=args.telemetry)
    except KeyboardInterrupt:
        print(f"\ninterrupted again — resume with: "
              f"python -m repro resume {args.directory}")
        return 130
    except ShardExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        print(f"(completed shards are persisted — resume with: "
              f"python -m repro resume {args.directory})", file=sys.stderr)
        return 1
    skipped = len(outcome.resumed_shards)
    print(f"resumed {outcome.spec.name!r}: {skipped} shard(s) loaded from "
          f"the store, {len(outcome.executed_shards)} executed")
    print()
    if outcome.report is not None:
        print(outcome.report.render(telemetry=outcome.telemetry))
    return _campaign_exit_code(outcome, args.directory)


def cmd_replay(args: argparse.Namespace) -> int:
    results = replay_findings(args.directory)
    if not results:
        print(f"no stored findings in {args.directory}")
        return 0
    failures = 0
    for result in results:
        status = "ok  " if result.confirmed else "FAIL"
        source = "minimized" if result.used_minimized else "original"
        print(f"  {status} shard {result.shard} finding {result.index}: "
              f"{result.kind} ({source} program)")
        failures += 0 if result.confirmed else 1
    print(f"{len(results) - failures}/{len(results)} findings re-confirmed")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Specure (DAC'24) reproduction: scenario campaigns, "
                    "self-check, resume, replay.",
    )
    commands = parser.add_subparsers(dest="command")

    run = commands.add_parser(
        "run", help="run a registered scenario or a .toml/.json scenario file"
    )
    run.add_argument("scenario", help="scenario name or scenario-file path")
    run.add_argument("--out", metavar="DIR", default=None,
                     help="run directory (default: runs/<scenario>)")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for multi-shard scenarios")
    run.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="override the spec's per-shard iteration budget")
    run.add_argument("--shards", type=int, default=None, metavar="K",
                     help="override the spec's shard count")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec's base seed")
    run.add_argument("--detector", choices=DETECTORS, default=None,
                     help="override the spec's detection pathway "
                          "(both = cross-validate IFT vs contract)")
    run.add_argument("--contract", default=None, metavar="CLAUSE",
                     help="override the spec's base contract clause "
                          "(e.g. ct-seq, ct-cond+ssb)")
    run.add_argument("--execution-clause", action="append", default=None,
                     dest="execution_clauses", metavar="MEMBER",
                     help="replace the spec's composed execution clauses "
                          "(repeatable: --execution-clause ssb "
                          "--execution-clause fault)")
    run.add_argument("--no-minimize", action="store_true",
                     help="skip trimming finding programs before storing")
    run.add_argument("--telemetry", action="store_true",
                     help="record spans/metrics/heartbeats into "
                          "<run-dir>/telemetry (inspect with "
                          "'python -m repro stats')")
    run.set_defaults(handler=cmd_run)

    listing = commands.add_parser(
        "list-scenarios", help="print the scenario registry"
    )
    listing.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="text table or machine-readable JSON "
                              "(specs included; default: text)")
    listing.set_defaults(handler=cmd_list_scenarios)

    stats = commands.add_parser(
        "stats", help="query a run directory's recorded telemetry"
    )
    stats.add_argument("directory", help="a run directory recorded with "
                                         "--telemetry")
    stats.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="report format (default: text)")
    stats.add_argument("--top", type=int, default=10, metavar="N",
                       help="slowest spans to list (default 10)")
    stats.add_argument("--validate", action="store_true",
                       help="validate the telemetry event logs against "
                            "the checked-in schema instead of reporting")
    stats.add_argument("--schema", default="docs/telemetry.schema.json",
                       metavar="FILE",
                       help="schema for --validate "
                            "(default: docs/telemetry.schema.json)")
    stats.set_defaults(handler=cmd_stats)

    analyze = commands.add_parser(
        "analyze", help="static analysis: RTL lint + taint reachability"
    )
    analyze.add_argument(
        "target",
        help="design name (listing-1, pipeline-cpu, spec-cpu, small, "
             "medium, large), scenario name, or scenario-file path")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="report format (default: text)")
    analyze.add_argument("--fail-on", choices=("warn", "error"),
                         default="error", metavar="SEVERITY",
                         help="exit 1 when an active finding reaches this "
                              "severity (warn|error, default: error)")
    analyze.set_defaults(handler=cmd_analyze)

    bench = commands.add_parser(
        "bench", help="measure the per-iteration hot path of scenarios"
    )
    bench.add_argument("--list", action="store_true",
                       help="list benchable scenarios with their "
                            "protocols and committed baselines, then exit")
    bench.add_argument("--scenario", action="append", metavar="NAME[@N]",
                       help="scenario name or file, optionally with a "
                            "pinned iteration budget (repeatable; "
                            "default: quickstart)")
    bench.add_argument("--scaling-jobs", action="append", type=int,
                       metavar="N", default=None,
                       help="also measure executor scaling at N worker "
                            "processes vs jobs=1 on a timed sharded "
                            "campaign (repeatable)")
    bench.add_argument("--scaling-scenario", default="quickstart",
                       metavar="NAME",
                       help="scenario for the scaling entry "
                            "(default: quickstart)")
    bench.add_argument("--scaling-shards", type=int, default=4, metavar="K",
                       help="timed shards in the scaling entry (default 4)")
    bench.add_argument("--scaling-budget-s", type=float, default=2.0,
                       metavar="S",
                       help="per-shard wall-clock budget of the scaling "
                            "entry (default 2.0)")
    bench.add_argument("--min-scaling", type=float, default=1.2, metavar="R",
                       help="fail unless the largest jobs count is at "
                            "least this much faster than jobs=1 "
                            "(default 1.2)")
    budget = bench.add_mutually_exclusive_group()
    budget.add_argument("--budget-s", type=float, default=None, metavar="S",
                        help="wall-clock budget per scenario (seconds)")
    budget.add_argument("--iterations", type=int, default=None, metavar="N",
                        help="fixed iteration budget per scenario "
                             "(default: the scenario's own)")
    bench.add_argument("--out", default="BENCH_pr3.json", metavar="FILE",
                       help="bench artifact path (default: BENCH_pr3.json)")
    bench.add_argument("--check", action="store_true",
                       help="gate against the committed artifact "
                            "(read from --gate before writing --out)")
    bench.add_argument("--gate", default=None, metavar="FILE",
                       help="committed artifact to gate against "
                            "(default: the --out path)")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       metavar="R",
                       help="iters/sec may drop at most this fraction "
                            "below the committed number (default 0.25)")
    bench.add_argument("--telemetry-overhead", action="store_true",
                       help="measure the pinned protocol with telemetry "
                            "off vs on and fail if the overhead exceeds "
                            "--max-telemetry-overhead")
    bench.add_argument("--max-telemetry-overhead", type=float, default=0.03,
                       metavar="R",
                       help="allowed telemetry slowdown in "
                            "--telemetry-overhead mode (default 0.03)")
    bench.add_argument("--checkpoint-overhead", action="store_true",
                       help="measure the pinned protocol with mid-shard "
                            "checkpointing off vs on and fail if the "
                            "overhead exceeds --max-checkpoint-overhead")
    bench.add_argument("--max-checkpoint-overhead", type=float, default=0.03,
                       metavar="R",
                       help="allowed checkpointing slowdown in "
                            "--checkpoint-overhead mode (default 0.03)")
    bench.add_argument("--checkpoint-every", type=int, default=25,
                       metavar="N",
                       help="checkpoint cadence in --checkpoint-overhead "
                            "mode (default 25, the scenario default)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="best-of repeats per overhead mode "
                            "(default 3)")
    bench.set_defaults(handler=cmd_bench)

    resume = commands.add_parser(
        "resume", help="continue an interrupted campaign from its run dir"
    )
    resume.add_argument("directory", help="the campaign's run directory")
    resume.add_argument("--jobs", type=int, default=None, metavar="N")
    resume.add_argument("--no-minimize", action="store_true")
    resume.add_argument("--telemetry", action="store_true",
                        help="record spans/metrics/heartbeats for the "
                             "resumed shards")
    resume.set_defaults(handler=cmd_resume)

    replay = commands.add_parser(
        "replay", help="re-confirm the stored findings of a run dir"
    )
    replay.add_argument("directory", help="the campaign's run directory")
    replay.set_defaults(handler=cmd_replay)

    check = commands.add_parser(
        "selfcheck", help="offline phase + all four vulns (the default)"
    )
    check.set_defaults(handler=selfcheck)

    args = parser.parse_args(argv)
    handler = getattr(args, "handler", selfcheck)
    try:
        return handler(args)
    except (ScenarioError, StoreError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
