"""``python -m repro`` — self-check and sharded campaign entry point.

Without arguments: prints the library version, runs the offline phase on
the default processor-under-test, verifies all four studied
vulnerabilities through the detection pipeline, and prints the
experiment registry.

With ``--iterations N``: runs a fuzzing campaign instead — optionally
sharded (``--shards``) across worker processes (``--jobs``) — and prints
the merged campaign report.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import BoomConfig, Specure, VulnConfig, __version__
from repro.core.online import OnlinePhase
from repro.fuzz.triggers import all_triggers
from repro.harness.experiments import render_registry


def selfcheck() -> int:
    """The original one-command self-check (default mode)."""
    print(f"repro {__version__} — Specure (DAC'24) reproduction")
    print()

    specure = Specure(BoomConfig.small(VulnConfig.all()), seed=1,
                      monitor_dcache=True)
    print(specure.offline().summary())
    print()

    online = OnlinePhase(specure.core, specure.offline(), monitor_dcache=True)
    failures = 0
    for kind, program in all_triggers().items():
        _, reports = online.run_once(program)
        detected = kind in {report.kind for report in reports}
        print(f"  {'ok  ' if detected else 'FAIL'} {kind}")
        failures += 0 if detected else 1
    print()
    print(render_registry())
    return 1 if failures else 0


def run_campaign(args: argparse.Namespace) -> int:
    """Run a (possibly sharded) campaign and print the merged report."""
    from repro.harness.parallel import run_sharded_campaign

    started = time.perf_counter()
    report = run_sharded_campaign(
        BoomConfig.small(VulnConfig.all()),
        args.iterations,
        shards=args.shards,
        jobs=args.jobs,
        base_seed=args.seed,
        coverage=args.coverage,
        monitor_dcache=True,
    )
    elapsed = time.perf_counter() - started
    print(report.render())
    print()
    print(
        f"({args.shards} shard(s) x {args.iterations} iterations, "
        f"jobs={args.jobs or 1}, {elapsed:.2f}s wall clock)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Specure (DAC'24) reproduction: self-check or campaign.",
    )
    parser.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="run a fuzzing campaign of N iterations per shard "
             "(default: run the self-check instead)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="number of independent campaign shards (default 1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sharded runs (default: inline)",
    )
    parser.add_argument(
        "--coverage", choices=("lp", "code"), default="lp",
        help="coverage feedback metric (default lp)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="base campaign seed (default 1)",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.iterations is not None:
        return run_campaign(args)
    return selfcheck()


if __name__ == "__main__":
    sys.exit(main())
